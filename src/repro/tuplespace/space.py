"""The tuple space engine (in-process JavaSpace).

Concurrency: one monitor condition guards the store; blocking ``read``/
``take`` wait on it and re-scan on every visibility change (write, commit,
abort, restored take).  Entries are kept in per-class buckets scanned in
insertion order, which makes matching deterministic (JavaSpaces itself
promises no order; determinism is a strict strengthening that experiments
rely on).

Isolation: entries are serialized at ``write`` and deserialized on every
``read``/``take``, so callers never share mutable state through the space —
the behaviour of the real JavaSpaces proxy, which marshals entries.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.errors import SpaceError
from repro.runtime.base import Runtime
from repro.tuplespace.entry import Entry, matches
from repro.tuplespace.events import EventRegistration, RemoteEvent
from repro.tuplespace.lease import FOREVER, Lease
from repro.tuplespace.transaction import Transaction

__all__ = ["JavaSpace"]

_AVAILABLE = "available"
_PENDING_WRITE = "pending-write"
_TAKEN = "taken"


class _Stored:
    """One entry in the store, with its lock state."""

    __slots__ = ("entry_id", "entry", "data", "lease", "state", "owner_txn", "read_lockers")

    def __init__(self, entry_id: int, entry: Entry, data: bytes, lease: Lease) -> None:
        self.entry_id = entry_id
        self.entry = entry            # private snapshot used for matching
        self.data = data              # serialized form returned to clients
        self.lease = lease
        self.state = _AVAILABLE
        self.owner_txn: Optional[Transaction] = None
        self.read_lockers: set[int] = set()  # txn ids holding shared locks


class _TxnOps:
    """Per-transaction bookkeeping inside one space."""

    __slots__ = ("writes", "takes", "reads")

    def __init__(self) -> None:
        self.writes: list[int] = []
        self.takes: list[int] = []
        self.reads: list[int] = []


class JavaSpace:
    """A shared, associative, transactional object repository."""

    def __init__(self, runtime: Runtime, name: str = "JavaSpaces") -> None:
        from repro.util.serialization import deserialize, serialize

        self._serialize = serialize
        self._deserialize = deserialize
        self.runtime = runtime
        self.name = name
        self._cond = runtime.condition()
        self._buckets: dict[type, dict[int, _Stored]] = {}
        # Per-class field-value index: cls → field → value → {entry ids}.
        # Only hashable field values are indexed; templates fall back to a
        # scan for the rest.  Cuts selective matching from O(bucket) to
        # O(candidates) — measured by bench_micro_space_template_selectivity.
        self._indexes: dict[type, dict[str, dict[Any, set[int]]]] = {}
        # Fields that ever held an unhashable value (per class): the index
        # is incomplete for them (an ndarray can still equal a hashable
        # template value), so matching falls back to scanning.
        self._unindexable: dict[type, set[str]] = {}
        self._ids = itertools.count(1)
        self._txn_ops: dict[int, _TxnOps] = {}
        self._registrations: list[EventRegistration] = []
        self._reg_ids = itertools.count(1)
        self.stats = {
            "writes": 0, "reads": 0, "takes": 0,
            "expired": 0, "events": 0, "bytes_written": 0,
        }

    # ------------------------------------------------------------------ write --

    def write(
        self,
        entry: Entry,
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
    ) -> Lease:
        """Store ``entry``; returns its lease.

        Under a transaction the entry stays invisible to other transactions
        until commit.
        """
        if not isinstance(entry, Entry):
            raise SpaceError(f"not an Entry: {type(entry).__name__}")
        data = self._serialize(entry)           # enforces serializability
        snapshot = self._deserialize(data)      # private, caller can't mutate it
        with self._cond:
            stored = _Stored(next(self._ids), snapshot, data, Lease(self.runtime, lease_ms))
            self._buckets.setdefault(type(snapshot), {})[stored.entry_id] = stored
            self._index_entry(stored)
            self.stats["writes"] += 1
            self.stats["bytes_written"] += len(data)
            if txn is not None:
                txn._enlist(self)
                stored.state = _PENDING_WRITE
                stored.owner_txn = txn
                self._ops(txn).writes.append(stored.entry_id)
            else:
                self._entry_became_visible(stored)
            return stored.lease

    # -------------------------------------------------------------- read/take --

    def read(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[Entry]:
        """Return a copy of a matching entry, waiting up to ``timeout_ms``.

        ``timeout_ms=None`` waits forever; ``0`` polls.  Under a transaction
        the entry gets a shared lock until the transaction completes.
        """
        return self._acquire(template, txn, timeout_ms, take=False)

    def take(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[Entry]:
        """Remove and return a matching entry (exactly-once semantics)."""
        return self._acquire(template, txn, timeout_ms, take=True)

    def read_if_exists(self, template: Entry, txn: Optional[Transaction] = None) -> Optional[Entry]:
        return self.read(template, txn, timeout_ms=0.0)

    def take_if_exists(self, template: Entry, txn: Optional[Transaction] = None) -> Optional[Entry]:
        return self.take(template, txn, timeout_ms=0.0)

    def snapshot(self, template: Entry) -> Entry:
        """Pre-serialized template (here: an isolated copy)."""
        return self._deserialize(self._serialize(template))

    # -- batch operations (JavaSpaces05-style extensions) ---------------------

    def write_all(
        self,
        entries: list[Entry],
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
    ) -> list[Lease]:
        """Write a batch of entries; under a transaction the batch commits
        or rolls back atomically (it is simply N writes in one txn)."""
        return [self.write(entry, txn=txn, lease_ms=lease_ms) for entry in entries]

    def take_multiple(
        self,
        template: Entry,
        max_entries: int,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> list[Entry]:
        """Take up to ``max_entries`` matches.

        JavaSpaces05 semantics: blocks (up to ``timeout_ms``) until at
        least one entry matches, then drains whatever is immediately
        available up to the cap — it does not wait for the cap to fill.
        """
        if max_entries < 1:
            raise SpaceError(f"max_entries must be >= 1: {max_entries}")
        first = self.take(template, txn=txn, timeout_ms=timeout_ms)
        if first is None:
            return []
        taken = [first]
        while len(taken) < max_entries:
            extra = self.take(template, txn=txn, timeout_ms=0.0)
            if extra is None:
                break
            taken.append(extra)
        return taken

    def contents(
        self, template: Entry, txn: Optional[Transaction] = None
    ) -> list[Entry]:
        """Copies of every currently visible matching entry (a snapshot
        iterator; does not lock or remove anything)."""
        with self._cond:
            self._reap_expired()
            template_type = type(template)
            out: list[Entry] = []
            for cls, bucket in self._buckets.items():
                if not issubclass(cls, template_type):
                    continue
                for stored in bucket.values():
                    if self._visible(stored, txn) and matches(template, stored.entry):
                        out.append(self._deserialize(stored.data))
            return out

    def _acquire(
        self,
        template: Entry,
        txn: Optional[Transaction],
        timeout_ms: Optional[float],
        take: bool,
    ) -> Optional[Entry]:
        if not isinstance(template, Entry):
            raise SpaceError(f"template is not an Entry: {type(template).__name__}")
        if txn is not None:
            txn.ensure_active()
        deadline = None if timeout_ms is None else self.runtime.now() + timeout_ms
        with self._cond:
            while True:
                self._reap_expired(template)
                stored = self._find(template, txn, take=take)
                if stored is not None:
                    return self._claim(stored, txn, take=take)
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - self.runtime.now()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
                if txn is not None:
                    txn.ensure_active()

    def _claim(self, stored: _Stored, txn: Optional[Transaction], take: bool) -> Entry:
        if take:
            self.stats["takes"] += 1
            if txn is None:
                self._remove(stored)
            else:
                txn._enlist(self)
                stored.state = _TAKEN
                stored.owner_txn = txn
                self._ops(txn).takes.append(stored.entry_id)
        else:
            self.stats["reads"] += 1
            if txn is not None:
                txn._enlist(self)
                if txn.txn_id not in stored.read_lockers:
                    stored.read_lockers.add(txn.txn_id)
                    self._ops(txn).reads.append(stored.entry_id)
        return self._deserialize(stored.data)

    # ----------------------------------------------------------------- notify --

    def notify(
        self,
        template: Entry,
        listener: Callable[[RemoteEvent], Any],
        lease_ms: float = FOREVER,
    ) -> EventRegistration:
        """Register ``listener`` for entries that become visible and match.

        Events are delivered asynchronously (outside the space monitor);
        listeners must not block.
        """
        with self._cond:
            reg = EventRegistration(
                next(self._reg_ids),
                self.snapshot(template),
                listener,
                Lease(self.runtime, lease_ms),
            )
            self._registrations.append(reg)
            return reg

    # ------------------------------------------------------------ transactions --

    def _ops(self, txn: Transaction) -> _TxnOps:
        ops = self._txn_ops.get(txn.txn_id)
        if ops is None:
            ops = _TxnOps()
            self._txn_ops[txn.txn_id] = ops
        return ops

    def _complete_transaction(self, txn: Transaction, commit: bool) -> None:
        """Called by Transaction.commit/abort with the outcome."""
        with self._cond:
            ops = self._txn_ops.pop(txn.txn_id, None)
            if ops is None:
                return
            for entry_id in ops.writes:
                stored = self._lookup(entry_id)
                if stored is None:
                    continue
                if stored.state == _TAKEN:
                    # Written then taken inside the same transaction: the
                    # entry never becomes visible; the takes loop below
                    # settles its fate.
                    continue
                if commit:
                    stored.state = _AVAILABLE
                    stored.owner_txn = None
                    self._entry_became_visible(stored)
                else:
                    self._remove(stored)
            written_here = set(ops.writes)
            for entry_id in ops.takes:
                stored = self._lookup(entry_id)
                if stored is None:
                    continue
                if commit or entry_id in written_here:
                    # Commit consumes the take; on abort, an entry this same
                    # transaction wrote was never visible, so discard it too.
                    self._remove(stored)
                else:
                    stored.state = _AVAILABLE
                    stored.owner_txn = None
                    self._cond.notify_all()
            for entry_id in ops.reads:
                stored = self._lookup(entry_id)
                if stored is not None:
                    stored.read_lockers.discard(txn.txn_id)
            self._cond.notify_all()

    # ---------------------------------------------------------------- internals --

    @staticmethod
    def _hashable(value: Any) -> bool:
        try:
            hash(value)
            return True
        except TypeError:
            return False

    def _index_entry(self, stored: _Stored) -> None:
        from repro.tuplespace.entry import entry_fields

        cls = type(stored.entry)
        index = self._indexes.setdefault(cls, {})
        for name, value in entry_fields(stored.entry).items():
            if value is None:
                continue
            if self._hashable(value):
                index.setdefault(name, {}).setdefault(value, set()).add(
                    stored.entry_id
                )
            else:
                self._unindexable.setdefault(cls, set()).add(name)

    def _unindex_entry(self, stored: _Stored) -> None:
        from repro.tuplespace.entry import entry_fields

        index = self._indexes.get(type(stored.entry))
        if index is None:
            return
        for name, value in entry_fields(stored.entry).items():
            if value is not None and self._hashable(value):
                ids = index.get(name, {}).get(value)
                if ids is not None:
                    ids.discard(stored.entry_id)
                    if not ids:
                        del index[name][value]

    def _candidate_ids(self, cls: type, template: Entry) -> Optional[list[int]]:
        """Entry ids pre-filtered by the indexed template fields.

        Returns None when no indexed field narrows the search (scan the
        bucket); an empty list means a definite miss.
        """
        from repro.tuplespace.entry import entry_fields

        index = self._indexes.get(cls, {})
        poisoned = self._unindexable.get(cls, set())
        ids: Optional[set[int]] = None
        for name, value in entry_fields(template).items():
            if value is None or name in poisoned or not self._hashable(value):
                continue
            matching = index.get(name, {}).get(value, set())
            ids = set(matching) if ids is None else ids & matching
            if not ids:
                return []
        return None if ids is None else sorted(ids)  # FIFO within matches

    def _find(self, template: Entry, txn: Optional[Transaction], take: bool) -> Optional[_Stored]:
        template_type = type(template)
        for cls, bucket in self._buckets.items():
            if not issubclass(cls, template_type):
                continue
            candidates = self._candidate_ids(cls, template)
            stored_iter = (
                bucket.values()
                if candidates is None
                else (bucket[i] for i in candidates if i in bucket)
            )
            for stored in stored_iter:
                if not self._visible(stored, txn):
                    continue
                if take and not self._takeable(stored, txn):
                    continue
                if matches(template, stored.entry):
                    return stored
        return None

    def _visible(self, stored: _Stored, txn: Optional[Transaction]) -> bool:
        if stored.lease.is_expired():
            return False
        if stored.state == _AVAILABLE:
            return True
        if stored.state == _PENDING_WRITE:
            return txn is not None and stored.owner_txn is txn
        return False  # _TAKEN: gone from every view

    def _takeable(self, stored: _Stored, txn: Optional[Transaction]) -> bool:
        """Shared read locks by *other* transactions block a take."""
        own = txn.txn_id if txn is not None else None
        return all(locker == own for locker in stored.read_lockers)

    def _entry_became_visible(self, stored: _Stored) -> None:
        self._cond.notify_all()
        if not self._registrations:
            return
        alive: list[EventRegistration] = []
        for reg in self._registrations:
            if not reg.active():
                continue
            alive.append(reg)
            if matches(reg.template, stored.entry):
                event = RemoteEvent(self.name, reg.registration_id, reg.next_sequence())
                self.stats["events"] += 1
                # Deliver outside the monitor; listeners must not block, and
                # a listener's failure is its own problem, not the space's.
                self.runtime.call_later(
                    0.0, lambda r=reg, e=event: self._deliver_event(r, e)
                )
        self._registrations = alive

    def _deliver_event(self, registration: EventRegistration, event: RemoteEvent) -> None:
        try:
            registration.listener(event)
        except Exception:
            self.stats["listener_errors"] = self.stats.get("listener_errors", 0) + 1

    def _lookup(self, entry_id: int) -> Optional[_Stored]:
        for bucket in self._buckets.values():
            stored = bucket.get(entry_id)
            if stored is not None:
                return stored
        return None

    def _remove(self, stored: _Stored) -> None:
        bucket = self._buckets.get(type(stored.entry))
        if bucket is not None and bucket.pop(stored.entry_id, None) is not None:
            self._unindex_entry(stored)

    def _reap_expired(self, template: Optional[Entry] = None) -> None:
        for bucket in self._buckets.values():
            expired = [s for s in bucket.values() if s.lease.is_expired() and s.state != _TAKEN]
            for stored in expired:
                self.stats["expired"] += 1
                self._remove(stored)

    # ------------------------------------------------------------------- misc --

    def count(self, template: Entry, txn: Optional[Transaction] = None) -> int:
        """Number of visible entries matching ``template`` (diagnostic)."""
        with self._cond:
            self._reap_expired()
            total = 0
            template_type = type(template)
            for cls, bucket in self._buckets.items():
                if not issubclass(cls, template_type):
                    continue
                for stored in bucket.values():
                    if self._visible(stored, txn) and matches(template, stored.entry):
                        total += 1
            return total
