"""The tuple space engine (in-process JavaSpace).

Concurrency: one monitor lock guards the store.  Blocked ``read``/``take``
callers park on *per-template-class wait queues* — a visibility change
(write, commit, abort-restore, read-lock release) wakes only the waiters
whose template class and field values can match the affected entry, not
the whole herd.  Each waiter has its own condition sharing the store lock,
so a targeted ``notify`` costs O(matching waiters) instead of the old
``notify_all`` cost of O(all waiters) re-scans per write.

Entries are kept in per-class buckets scanned in insertion order, which
makes matching deterministic (JavaSpaces itself promises no order;
determinism is a strict strengthening that experiments rely on).  An
``entry_id → _Stored`` map gives O(1) transaction bookkeeping, and lease
expiry is driven by a deadline min-heap: ``_reap_expired`` is O(expired)
per call and free when every lease is FOREVER.

Isolation: entries are serialized at ``write`` and a private snapshot is
deserialized *lazily* the first time field matching needs it — a
class-only template (the master/worker hot path) never pays the second
pickle pass at all.  Callers still never share mutable state through the
space: every ``read``/``take`` returns a fresh copy deserialized from the
stored bytes, the behaviour of the real JavaSpaces proxy.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Optional

from repro.errors import SpaceError
from repro.runtime.base import Runtime
from repro.tuplespace.entry import Entry, match_items, matches_fields
from repro.tuplespace.events import EventRegistration, RemoteEvent
from repro.tuplespace.lease import FOREVER, Lease
from repro.tuplespace.transaction import Transaction
from repro.util.codec import decode_any, encode_entry, peek_class
from repro.util.serialization import serialize

__all__ = ["JavaSpace", "CODECS"]

#: Supported entry codecs.  ``pickle`` is the determinism reference;
#: ``compact`` is the fast positional codec (see ``repro.util.codec``).
#: Decoding always accepts both frame kinds, so the knob only picks what
#: *new* bytes look like.
CODECS = ("pickle", "compact")


#: Stat keys, in exposition order.  Each maps to a plain ``_stat_<key>``
#: int attribute on the space (cheaper to bump on the hot path than a
#: dict item) and surfaces in the telemetry registry as ``space.<key>``.
STAT_KEYS = ("writes", "reads", "takes", "expired", "events",
             "bytes_written", "wakeups", "listener_errors")


class _SpaceStats(Mapping):
    """Read-through dict view over the space's ``_stat_*`` attributes.

    Keeps the historical ``space.stats["writes"]`` API (tests and
    benchmarks read it) while the counters themselves live as plain
    attributes that cost one integer add per operation.
    """

    __slots__ = ("_space",)

    def __init__(self, space: "JavaSpace") -> None:
        self._space = space

    def __getitem__(self, key: str) -> int:
        if key not in STAT_KEYS:
            raise KeyError(key)
        return getattr(self._space, "_stat_" + key)

    def __iter__(self) -> Iterator[str]:
        return iter(STAT_KEYS)

    def __len__(self) -> int:
        return len(STAT_KEYS)

    def __repr__(self) -> str:
        return repr(dict(self))

_AVAILABLE = "available"
_PENDING_WRITE = "pending-write"
_TAKEN = "taken"


class _Stored:
    """One entry in the store, with its lock state.

    ``entry`` (the private matching snapshot) is deserialized on first
    access; ``cls`` and ``index_keys`` are recorded at write time so the
    common paths — class-only matching, index maintenance, removal —
    never force the snapshot.
    """

    __slots__ = (
        "entry_id", "cls", "data", "lease", "state", "owner_txn",
        "read_lockers", "index_keys", "_snapshot",
    )

    def __init__(self, entry_id: int, cls: type, data: bytes, lease: Lease) -> None:
        self.entry_id = entry_id
        self.cls = cls                # entry class (pickle preserves identity)
        self.data = data              # serialized form returned to clients
        self.lease = lease
        self.state = _AVAILABLE
        self.owner_txn: Optional[Transaction] = None
        # Lazily-allocated (None ≡ empty): most entries are never read
        # under a transaction nor indexed, and the write path is hot.
        self.read_lockers: Optional[set[int]] = None  # txn ids, shared locks
        self.index_keys: Optional[list[tuple[str, Any]]] = None
        self._snapshot: Optional[Entry] = None

    @property
    def entry(self) -> Entry:
        """Private matching snapshot, materialized on first field match."""
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = self._snapshot = decode_any(self.data)
        return snapshot


class _ScanList:
    """Insertion-order scan index for one class bucket.

    CPython dicts never shrink and their iteration walks the dead slots
    that ``pop`` leaves behind, so a FIFO drain of a large bucket would
    make every subsequent scan start with a tombstone march.  Scans
    therefore walk this id list instead: ``head`` lazily retires the
    leading removed ids (O(1) amortized for FIFO removal, the dominant
    pattern), and ``stale`` counts mid-list removals so the list is
    rebuilt — live ids only — once they outnumber the remainder.
    """

    __slots__ = ("ids", "head", "stale")

    def __init__(self) -> None:
        self.ids: list[int] = []
        self.head = 0
        self.stale = 0


class _Waiter:
    """One blocked ``read``/``take`` caller, parked on its own condition."""

    __slots__ = ("template_cls", "items", "cond", "take", "txn", "woken")

    def __init__(
        self,
        template_cls: type,
        items: list[tuple[str, Any]],
        cond: Any,
        take: bool,
        txn: Optional[Transaction],
    ) -> None:
        self.template_cls = template_cls
        self.items = items            # precomputed non-None template fields
        self.cond = cond              # shares the space lock
        self.take = take
        self.txn = txn
        self.woken = False            # set by the waker; at most one notify


class _TxnOps:
    """Per-transaction bookkeeping inside one space."""

    __slots__ = ("writes", "takes", "reads")

    def __init__(self) -> None:
        self.writes: list[int] = []
        self.takes: list[int] = []
        self.reads: list[int] = []


class JavaSpace:
    """A shared, associative, transactional object repository."""

    #: When true, committed state changes are reported to ``_journal_ops``
    #: (overridden by :class:`repro.tuplespace.durable.DurableSpace`); the
    #: base space never pays for the hook.
    journaling = False

    def __init__(self, runtime: Runtime, name: str = "JavaSpaces",
                 codec: str = "pickle") -> None:
        if codec not in CODECS:
            raise SpaceError(f"unknown codec {codec!r}; expected one of {CODECS}")
        self.codec = codec
        self._serialize = encode_entry if codec == "compact" else serialize
        # Decoding dispatches on the frame's first byte, so a space always
        # reads bytes written under either codec (WAL replay across a
        # codec switch, mixed-codec clients).
        self._deserialize = decode_any
        self.runtime = runtime
        self.name = name
        self._lock = runtime.lock()
        self._buckets: dict[type, dict[int, _Stored]] = {}
        self._scan_lists: dict[type, _ScanList] = {}  # FIFO scan order
        self._by_id: dict[int, _Stored] = {}  # O(1) entry_id lookup
        # Per-class field-value index: cls → field → value → {entry ids}.
        # Built *lazily*: a (class, field) index materializes the first
        # time a template selects on that field (one bucket scan), and
        # only those activated fields are maintained on later writes.
        # The write hot path therefore pays nothing for indexing until a
        # selective reader proves the field is worth it — eager all-field
        # indexing was the single largest cost in the write/take profile.
        # Only hashable field values are indexed; templates fall back to a
        # scan for the rest.  Cuts selective matching from O(bucket) to
        # O(candidates) — measured by bench_micro_space_template_selectivity.
        self._indexes: dict[type, dict[str, dict[Any, set[int]]]] = {}
        # Fields that ever held an unhashable value (per class): the index
        # is incomplete for them (an ndarray can still equal a hashable
        # template value), so matching falls back to scanning.
        self._unindexable: dict[type, set[str]] = {}
        # Blocked callers keyed by template class; a visibility change only
        # touches the queues along the entry class's MRO.
        self._waiters: dict[type, list[_Waiter]] = {}
        # Lease bookkeeping: (expiration_ms, entry_id) min-heap for finite
        # leases plus a list of explicitly cancelled entry ids, so reaping
        # is O(expired) and skips entirely when every lease is FOREVER.
        self._lease_heap: list[tuple[float, int]] = []
        self._lease_cancelled: list[int] = []
        self._ids = itertools.count(1)
        self._last_id = 0  # highest id ever issued (snapshot/replay resume)
        self._txn_ops: dict[int, _TxnOps] = {}
        self._registrations: list[EventRegistration] = []
        self._reg_ids = itertools.count(1)
        self._stat_writes = 0
        self._stat_reads = 0
        self._stat_takes = 0
        self._stat_expired = 0
        self._stat_events = 0
        self._stat_bytes_written = 0
        self._stat_wakeups = 0
        self._stat_listener_errors = 0
        self.stats = _SpaceStats(self)
        # Weighted fair-share dispatch (deficit round-robin across tenants).
        # ``None`` keeps the single-tenant fast path: _find never inspects
        # tenant fields and never forces matching snapshots.
        self._fair_shares: Optional[dict[str, float]] = None
        self._fair_default_share = 1.0
        self._fair_class_names: frozenset[str] = frozenset()
        self._drr_deficit: dict[str, float] = {}
        #: Observational counters (``grants:<tenant>`` per DRR selection);
        #: not part of STAT_KEYS so existing telemetry goldens hold.
        self.fair_stats: dict[str, int] = {}

    # ------------------------------------------------------------------ write --

    def write(
        self,
        entry: Entry,
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
        requeue: bool = False,
    ) -> Lease:
        """Store ``entry``; returns its lease.

        ``requeue`` is accepted for client-API parity with
        :class:`~repro.tuplespace.proxy.SpaceProxy` and ignored here:
        admission control is a *server* concern, and the in-process
        space has no admission controller in front of it.

        Under a transaction the entry stays invisible to other transactions
        until commit.
        """
        if not isinstance(entry, Entry):
            raise SpaceError(f"not an Entry: {type(entry).__name__}")
        data = self._serialize(entry)           # enforces serializability
        with self._lock:
            stored = self._store(type(entry), data, lease_ms, entry)
            if txn is not None:
                txn._enlist(self)
                stored.state = _PENDING_WRITE
                stored.owner_txn = txn
                self._ops(txn).writes.append(stored.entry_id)
            else:
                self._entry_became_visible(stored)
                if self.journaling:
                    self._journal_ops([
                        ("write", stored.entry_id, data, stored.lease.expiration_ms)
                    ])
            return stored.lease

    def write_encoded(
        self,
        data: bytes,
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
    ) -> Lease:
        """Store an already-encoded entry without re-serializing it.

        The zero-copy server path: a proxy client encoded the entry once,
        the bytes travelled the wire, and the space stores them verbatim
        (compact frames don't even decode — the class comes from the
        frame header; pickle frames decode once for the class and keep
        the instance as the matching snapshot).
        """
        entry: Optional[Entry] = None
        cls = peek_class(data)
        if cls is None:
            entry = decode_any(data)
            cls = type(entry)
        if not (isinstance(cls, type) and issubclass(cls, Entry)):
            raise SpaceError(f"not an Entry: {cls.__name__}")
        with self._lock:
            stored = self._store(cls, data, lease_ms, entry)
            if entry is not None:
                stored._snapshot = entry
            if txn is not None:
                txn._enlist(self)
                stored.state = _PENDING_WRITE
                stored.owner_txn = txn
                self._ops(txn).writes.append(stored.entry_id)
            else:
                self._entry_became_visible(stored)
                if self.journaling:
                    self._journal_ops([
                        ("write", stored.entry_id, data, stored.lease.expiration_ms)
                    ])
            return stored.lease

    def _store(self, cls: type, data: bytes, lease_ms: float,
               entry: Optional[Entry] = None) -> _Stored:
        """Insert one serialized entry (store, id map, index, lease heap).

        ``entry`` is the writer's live instance when available — it spares
        the index maintenance path a snapshot decode; pre-encoded writes
        pass None and the (rarely needed) snapshot stays lazy.
        """
        entry_id = next(self._ids)
        self._last_id = entry_id
        cancelled = self._lease_cancelled
        lease = Lease(
            self.runtime, lease_ms,
            on_cancel=lambda eid=entry_id: cancelled.append(eid),
        )
        stored = _Stored(entry_id, cls, data, lease)
        bucket = self._buckets.get(cls)
        if bucket is None:
            bucket = self._buckets[cls] = {}
            self._scan_lists[cls] = _ScanList()
        bucket[entry_id] = stored
        self._scan_lists[cls].ids.append(entry_id)
        self._by_id[entry_id] = stored
        if self._indexes.get(cls):
            self._index_entry(stored, entry)
        if lease.expiration_ms != FOREVER:
            heappush(self._lease_heap, (lease.expiration_ms, entry_id))
        self._stat_writes += 1
        self._stat_bytes_written += len(data)
        return stored

    # -------------------------------------------------------------- read/take --

    def read(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[Entry]:
        """Return a copy of a matching entry, waiting up to ``timeout_ms``.

        ``timeout_ms=None`` waits forever; ``0`` polls.  Under a transaction
        the entry gets a shared lock until the transaction completes.
        """
        got = self._acquire_batch(template, txn, timeout_ms, take=False, max_entries=1)
        return got[0] if got else None

    def take(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[Entry]:
        """Remove and return a matching entry (exactly-once semantics)."""
        got = self._acquire_batch(template, txn, timeout_ms, take=True, max_entries=1)
        return got[0] if got else None

    def read_if_exists(self, template: Entry, txn: Optional[Transaction] = None) -> Optional[Entry]:
        return self.read(template, txn, timeout_ms=0.0)

    def exists(self, template: Entry, txn: Optional[Transaction] = None,
               timeout_ms: Optional[float] = None) -> bool:
        """Non-consuming presence check: a ``read`` that reports only
        whether a match was seen (scatter clients camp on this)."""
        return self.read(template, txn, timeout_ms=timeout_ms) is not None

    def take_if_exists(self, template: Entry, txn: Optional[Transaction] = None) -> Optional[Entry]:
        return self.take(template, txn, timeout_ms=0.0)

    # -- encoded (zero-copy) variants: results are the stored frames ----------

    def read_encoded(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[bytes]:
        """Like :meth:`read`, but returns the stored frame bytes."""
        got = self._acquire_batch(template, txn, timeout_ms, take=False,
                                  max_entries=1, raw=True)
        return got[0] if got else None

    def take_encoded(
        self,
        template: Entry,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> Optional[bytes]:
        """Like :meth:`take`, but returns the stored frame bytes."""
        got = self._acquire_batch(template, txn, timeout_ms, take=True,
                                  max_entries=1, raw=True)
        return got[0] if got else None

    def take_multiple_encoded(
        self,
        template: Entry,
        max_entries: int,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> list[bytes]:
        """Like :meth:`take_multiple`, but returns stored frame bytes."""
        if max_entries < 1:
            raise SpaceError(f"max_entries must be >= 1: {max_entries}")
        return self._acquire_batch(template, txn, timeout_ms, take=True,
                                   max_entries=max_entries, raw=True)

    def snapshot(self, template: Entry) -> Entry:
        """Pre-serialized template (here: an isolated copy)."""
        return self._deserialize(self._serialize(template))

    # -- batch operations (JavaSpaces05-style extensions) ---------------------

    def write_all(
        self,
        entries: list[Entry],
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
        requeue: bool = False,
    ) -> list[Lease]:
        """Write a batch of entries in one monitor pass.

        Serialization happens before the lock is taken; the store/index
        inserts share one lock acquisition, and each blocked waiter is
        woken at most once for the whole batch (it leaves its queue on the
        first notify).  Under a transaction the batch commits or rolls
        back atomically.
        """
        for entry in entries:
            if not isinstance(entry, Entry):
                raise SpaceError(f"not an Entry: {type(entry).__name__}")
        serialized = [self._serialize(entry) for entry in entries]
        with self._lock:
            ops = None
            if txn is not None:
                txn._enlist(self)
                ops = self._ops(txn)
            leases: list[Lease] = []
            journal: list[tuple] = []
            for entry, data in zip(entries, serialized):
                stored = self._store(type(entry), data, lease_ms, entry)
                leases.append(stored.lease)
                if ops is not None:
                    stored.state = _PENDING_WRITE
                    stored.owner_txn = txn
                    ops.writes.append(stored.entry_id)
                else:
                    self._entry_became_visible(stored)
                    if self.journaling:
                        journal.append(
                            ("write", stored.entry_id, data,
                             stored.lease.expiration_ms)
                        )
            if journal:
                self._journal_ops(journal)
            return leases

    def write_all_encoded(
        self,
        datas: list[bytes],
        txn: Optional[Transaction] = None,
        lease_ms: float = FOREVER,
    ) -> list[Lease]:
        """Batch form of :meth:`write_encoded` (one monitor pass)."""
        resolved: list[tuple[type, bytes, Optional[Entry]]] = []
        for data in datas:
            entry: Optional[Entry] = None
            cls = peek_class(data)
            if cls is None:
                entry = decode_any(data)
                cls = type(entry)
            if not (isinstance(cls, type) and issubclass(cls, Entry)):
                raise SpaceError(f"not an Entry: {cls.__name__}")
            resolved.append((cls, data, entry))
        with self._lock:
            ops = None
            if txn is not None:
                txn._enlist(self)
                ops = self._ops(txn)
            leases: list[Lease] = []
            journal: list[tuple] = []
            for cls, data, entry in resolved:
                stored = self._store(cls, data, lease_ms, entry)
                if entry is not None:
                    stored._snapshot = entry
                leases.append(stored.lease)
                if ops is not None:
                    stored.state = _PENDING_WRITE
                    stored.owner_txn = txn
                    ops.writes.append(stored.entry_id)
                else:
                    self._entry_became_visible(stored)
                    if self.journaling:
                        journal.append(
                            ("write", stored.entry_id, data,
                             stored.lease.expiration_ms)
                        )
            if journal:
                self._journal_ops(journal)
            return leases

    def take_multiple(
        self,
        template: Entry,
        max_entries: int,
        txn: Optional[Transaction] = None,
        timeout_ms: Optional[float] = None,
    ) -> list[Entry]:
        """Take up to ``max_entries`` matches in one monitor pass.

        JavaSpaces05 semantics: blocks (up to ``timeout_ms``) until at
        least one entry matches, then drains whatever is immediately
        available up to the cap — it does not wait for the cap to fill.
        The drain happens under a single lock acquisition instead of N
        re-entries.
        """
        if max_entries < 1:
            raise SpaceError(f"max_entries must be >= 1: {max_entries}")
        return self._acquire_batch(template, txn, timeout_ms, take=True,
                                   max_entries=max_entries)

    def contents(
        self, template: Entry, txn: Optional[Transaction] = None
    ) -> list[Entry]:
        """Copies of every currently visible matching entry (a snapshot
        iterator; does not lock or remove anything)."""
        with self._lock:
            self._reap_expired()
            return [self._deserialize(stored.data)
                    for stored in self._iter_matching(template, txn)]

    def _acquire_batch(
        self,
        template: Entry,
        txn: Optional[Transaction],
        timeout_ms: Optional[float],
        take: bool,
        max_entries: int,
        raw: bool = False,
    ) -> list:
        if not isinstance(template, Entry):
            raise SpaceError(f"template is not an Entry: {type(template).__name__}")
        if txn is not None:
            txn.ensure_active()
        deadline = None if timeout_ms is None else self.runtime.now() + timeout_ms
        template_cls = type(template)
        items = match_items(template)
        waiter: Optional[_Waiter] = None
        with self._lock:
            while True:
                if self._lease_cancelled or self._lease_heap:
                    self._reap_expired()
                out: list = []
                if max_entries == 1:
                    stored = self._find(template_cls, items, txn, take)
                    if stored is not None:
                        out.append(self._claim(stored, txn, take, raw))
                elif self._fair_applies(template_cls, items, take):
                    # DRR selection depends on what each claim consumes,
                    # so the fair path claims as it goes.
                    while len(out) < max_entries:
                        stored = self._find(template_cls, items, txn, take)
                        if stored is None:
                            break
                        out.append(self._claim(stored, txn, take, raw))
                else:
                    # Drain in one pass: the candidate sets (index buckets
                    # or the class bucket) are walked once for the whole
                    # batch instead of once per taken entry.
                    for stored in self._find_many(template_cls, items, txn,
                                                  take, max_entries):
                        out.append(self._claim(stored, txn, take, raw))
                if out:
                    return out
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - self.runtime.now()
                    if remaining <= 0:
                        return []
                if waiter is None:
                    waiter = _Waiter(template_cls, items,
                                     self.runtime.condition(self._lock), take, txn)
                    if txn is not None:
                        # Enlist before parking so the transaction's
                        # completion reaches _wake_txn_waiters even if this
                        # blocked call was its only contact with the space.
                        txn._enlist(self)
                queue = self._waiters.setdefault(template_cls, [])
                waiter.woken = False
                queue.append(waiter)
                try:
                    waiter.cond.wait(remaining)
                finally:
                    # On timeout (no targeted notify) we are still queued.
                    if not waiter.woken and waiter in queue:
                        queue.remove(waiter)
                if txn is not None:
                    txn.ensure_active()

    def _claim(self, stored: _Stored, txn: Optional[Transaction], take: bool,
               raw: bool = False):
        if take:
            self._stat_takes += 1
            if txn is None:
                self._remove(stored)
                if self.journaling:
                    self._journal_ops([("take", stored.entry_id)])
            else:
                txn._enlist(self)
                stored.state = _TAKEN
                stored.owner_txn = txn
                self._ops(txn).takes.append(stored.entry_id)
        else:
            self._stat_reads += 1
            if txn is not None:
                txn._enlist(self)
                lockers = stored.read_lockers
                if lockers is None:
                    lockers = stored.read_lockers = set()
                if txn.txn_id not in lockers:
                    lockers.add(txn.txn_id)
                    self._ops(txn).reads.append(stored.entry_id)
        if raw:
            # Zero-copy reply path: the stored bytes ship as-is and the
            # far side decodes once.  Isolation holds — bytes are immutable.
            return stored.data
        return self._deserialize(stored.data)

    # ----------------------------------------------------------------- notify --

    def notify(
        self,
        template: Entry,
        listener: Callable[[RemoteEvent], Any],
        lease_ms: float = FOREVER,
    ) -> EventRegistration:
        """Register ``listener`` for entries that become visible and match.

        Events are delivered asynchronously (outside the space monitor);
        listeners must not block.
        """
        with self._lock:
            reg = EventRegistration(
                next(self._reg_ids),
                self.snapshot(template),
                listener,
                Lease(self.runtime, lease_ms),
            )
            self._registrations.append(reg)
            return reg

    # ------------------------------------------------------------ transactions --

    def _ops(self, txn: Transaction) -> _TxnOps:
        ops = self._txn_ops.get(txn.txn_id)
        if ops is None:
            ops = _TxnOps()
            self._txn_ops[txn.txn_id] = ops
        return ops

    def _complete_transaction(self, txn: Transaction, commit: bool) -> None:
        """Called by Transaction.commit/abort with the outcome."""
        with self._lock:
            # Waiters blocked *under* this transaction can never succeed
            # once it completes; wake them so they observe the abort/commit
            # instead of sleeping to their timeout.
            self._wake_txn_waiters(txn)
            ops = self._txn_ops.pop(txn.txn_id, None)
            if ops is None:
                return
            by_id = self._by_id
            # One commit = one journal batch: the transaction's *net*
            # committed effect.  Writes taken back inside the same txn and
            # anything an aborting txn touched never reach the log.
            journal: list[tuple] = []
            for entry_id in ops.writes:
                stored = by_id.get(entry_id)
                if stored is None:
                    continue
                if stored.state == _TAKEN:
                    # Written then taken inside the same transaction: the
                    # entry never becomes visible; the takes loop below
                    # settles its fate.
                    continue
                if commit:
                    stored.state = _AVAILABLE
                    stored.owner_txn = None
                    self._entry_became_visible(stored)
                    if self.journaling:
                        journal.append(
                            ("write", entry_id, stored.data,
                             stored.lease.expiration_ms)
                        )
                else:
                    self._remove(stored)
            written_here = set(ops.writes)
            for entry_id in ops.takes:
                stored = by_id.get(entry_id)
                if stored is None:
                    continue
                if commit or entry_id in written_here:
                    # Commit consumes the take; on abort, an entry this same
                    # transaction wrote was never visible, so discard it too.
                    self._remove(stored)
                    if self.journaling and commit and entry_id not in written_here:
                        journal.append(("take", entry_id))
                elif stored.lease.is_expired():
                    # The lease ran out while the take was pending; the
                    # restored entry would be invisible, so reap it now.
                    self._stat_expired += 1
                    self._remove(stored)
                else:
                    stored.state = _AVAILABLE
                    stored.owner_txn = None
                    self._wake_waiters(stored)
            for entry_id in ops.reads:
                stored = by_id.get(entry_id)
                if stored is None:
                    continue
                if stored.read_lockers is not None:
                    stored.read_lockers.discard(txn.txn_id)
                # Releasing the last shared lock can unblock a taker.
                if (not stored.read_lockers and stored.state == _AVAILABLE
                        and not stored.lease.is_expired()):
                    self._wake_waiters(stored)
            if journal:
                self._journal_ops(journal)

    def _journal_ops(self, ops: list[tuple]) -> None:
        """Hook: one atomic batch of committed state changes.

        Called under the space lock with ``("write", entry_id, data,
        expiration_ms)`` / ``("take", entry_id)`` tuples.  No-op here;
        ``DurableSpace`` appends them to its write-ahead log.
        """

    # ------------------------------------------------------- recovery internals --

    def _restore(self, entry_id: int, data: bytes, expiration_ms: float) -> None:
        """Re-insert one committed entry with its original id and absolute
        lease deadline (WAL replay / snapshot install; caller holds the
        lock or owns the space exclusively)."""
        cancelled = self._lease_cancelled
        lease = Lease(
            self.runtime,
            expiration_ms if expiration_ms == FOREVER
            # Clamp at zero: an entry whose deadline passed while the space
            # was down restores as already expired and reaps lazily.
            else max(0.0, expiration_ms - self.runtime.now()),
            on_cancel=lambda eid=entry_id: cancelled.append(eid),
        )
        entry: Optional[Entry] = None
        cls = peek_class(data)
        if cls is None:
            # Pickle frame: decoding is the only way to learn the class,
            # so keep the instance as the matching snapshot.
            entry = decode_any(data)
            cls = type(entry)
        stored = _Stored(entry_id, cls, data, lease)
        stored._snapshot = entry
        bucket = self._buckets.get(cls)
        if bucket is None:
            bucket = self._buckets[cls] = {}
            self._scan_lists[cls] = _ScanList()
        bucket[entry_id] = stored
        self._scan_lists[cls].ids.append(entry_id)
        self._by_id[entry_id] = stored
        if self._indexes.get(cls):
            self._index_entry(stored, entry)
        if lease.expiration_ms != FOREVER:
            heappush(self._lease_heap, (lease.expiration_ms, entry_id))
        if entry_id > self._last_id:
            self._last_id = entry_id
            self._ids = itertools.count(entry_id + 1)

    def _discard(self, entry_id: int) -> None:
        """Remove an entry by id if present (WAL replay of a take)."""
        stored = self._by_id.get(entry_id)
        if stored is not None:
            self._remove(stored)

    def _reset_state(self) -> None:
        """Drop every stored entry and index (snapshot install on a
        standby); waiters, registrations and stats are left alone."""
        self._buckets.clear()
        self._scan_lists.clear()
        self._by_id.clear()
        self._indexes.clear()
        self._unindexable.clear()
        self._lease_heap.clear()
        self._lease_cancelled.clear()

    def _committed_state(self) -> tuple[int, list[tuple[int, bytes, float]]]:
        """``(last_id, [(entry_id, data, expiration_ms), ...])`` for every
        committed, unexpired entry.

        An entry under an open take (``_TAKEN``) is committed state — the
        take hasn't happened yet; a pending write is not.  Caller holds
        the lock.
        """
        entries: list[tuple[int, bytes, float]] = []
        for entry_id, stored in self._by_id.items():
            if stored.state == _PENDING_WRITE or stored.lease.is_expired():
                continue
            entries.append((entry_id, stored.data, stored.lease.expiration_ms))
        return self._last_id, entries

    # ---------------------------------------------------------------- internals --

    @staticmethod
    def _hashable(value: Any) -> bool:
        try:
            hash(value)
            return True
        except TypeError:
            return False

    def _index_entry(self, stored: _Stored, entry: Optional[Entry]) -> None:
        """Maintain the *activated* field indexes for one inserted entry.

        Called from ``_store``/``_restore`` only when the class already
        has at least one activated index (``_build_index`` activated it
        on behalf of a selective reader) — the common write never gets
        here.  ``entry`` is the writer's live instance when available;
        pre-encoded inserts fall back to the lazy snapshot.  The indexed
        ``(field, value)`` pairs are recorded on ``stored`` so removal
        never recomputes them.  Index correctness relies on values whose
        hash/equality survive recoding — true of every sane key type, and
        the index is only ever a pre-filter: ``matches`` still confirms
        against the isolated snapshot.
        """
        cls = stored.cls
        index = self._indexes.get(cls)
        if not index:
            return
        if entry is None:
            entry = stored.entry
        attrs = entry.__dict__
        keys = stored.index_keys
        if keys is None:
            keys = stored.index_keys = []
        dropped: list[str] = []
        for name, by_value in index.items():
            value = attrs.get(name)
            if value is None:
                continue
            try:
                ids = by_value.get(value)
            except TypeError:
                # Unhashable value: poison the field and stop maintaining
                # its index — _candidate_ids falls back to scanning.
                self._unindexable.setdefault(cls, set()).add(name)
                dropped.append(name)
                continue
            if ids is None:
                by_value[value] = ids = set()
            ids.add(stored.entry_id)
            keys.append((name, value))
        for name in dropped:
            del index[name]

    def _build_index(
        self, cls: type, name: str
    ) -> Optional[dict[Any, set[int]]]:
        """Activate the ``(cls, name)`` index: one scan over the bucket.

        Lazy-index activation point — the first template that selects on
        ``name`` pays one O(bucket) build (forcing matching snapshots),
        and every later write maintains the index incrementally.  Returns
        None (and poisons the field) if any current value is unhashable.
        """
        by_value: dict[Any, set[int]] = {}
        indexed: list[tuple[_Stored, Any]] = []
        bucket = self._buckets.get(cls)
        if bucket:
            for stored in bucket.values():
                value = stored.entry.__dict__.get(name)
                if value is None:
                    continue
                try:
                    ids = by_value.get(value)
                except TypeError:
                    self._unindexable.setdefault(cls, set()).add(name)
                    return None
                if ids is None:
                    by_value[value] = ids = set()
                ids.add(stored.entry_id)
                indexed.append((stored, value))
        for stored, value in indexed:
            if stored.index_keys is None:
                stored.index_keys = []
            stored.index_keys.append((name, value))
        index = self._indexes.get(cls)
        if index is None:
            index = self._indexes[cls] = {}
        index[name] = by_value
        return by_value

    def _unindex_entry(self, stored: _Stored) -> None:
        if not stored.index_keys:
            return
        index = self._indexes.get(stored.cls)
        if index is None:
            return
        for name, value in stored.index_keys:
            by_value = index.get(name)
            ids = by_value.get(value) if by_value is not None else None
            if ids is not None:
                ids.discard(stored.entry_id)
                if not ids:
                    del by_value[value]

    def _candidate_ids(
        self, cls: type, items: list[tuple[str, Any]]
    ) -> Optional[list[int]]:
        """Entry ids pre-filtered by the indexed template fields.

        Selecting on a field that has no index yet *activates* it (one
        bucket scan via ``_build_index``); after that the lookup is a
        pair of dict probes.  Returns None when no indexed field narrows
        the search (scan the bucket); an empty list means a definite miss.
        """
        poisoned = self._unindexable.get(cls)
        ids: Optional[set[int]] = None
        index = self._indexes.get(cls)
        for name, value in items:
            if (poisoned is not None and name in poisoned) or not self._hashable(value):
                continue
            by_value = index.get(name) if index is not None else None
            if by_value is None:
                by_value = self._build_index(cls, name)
                if by_value is None:
                    poisoned = self._unindexable.get(cls)
                    continue
                index = self._indexes.get(cls)
            matching = by_value.get(value)
            if not matching:
                return []
            ids = set(matching) if ids is None else ids & matching
            if not ids:
                return []
        return None if ids is None else sorted(ids)  # FIFO within matches

    # ----------------------------------------------------- fair-share dispatch --

    def configure_fair_share(
        self,
        shares: dict[str, float],
        default_share: float = 1.0,
        class_names: tuple[str, ...] = ("TaskEntry",),
    ) -> None:
        """Enable weighted fair-share ``take`` dispatch across tenants.

        Competing takes whose template is one of ``class_names`` and does
        not pin a ``tenant`` are served by deficit round-robin: each
        selection visits the tenants that currently have a matching entry
        in sorted-name order, replenishing each visited tenant's deficit
        by ``share`` normalized to the largest present share, and serves
        the first tenant whose deficit covers one task.  Long-run grants
        converge to the configured weights; FIFO order is preserved
        within a tenant.  Entries without a tenant participate as the
        pseudo-tenant ``""`` at ``default_share``.
        """
        for tenant, share in shares.items():
            if share <= 0:
                raise SpaceError(f"tenant share must be > 0: {tenant}={share}")
        if default_share <= 0:
            raise SpaceError(f"default_share must be > 0: {default_share}")
        with self._lock:
            self._fair_shares = dict(shares)
            self._fair_default_share = float(default_share)
            self._fair_class_names = frozenset(class_names)

    def _share_of(self, tenant: str) -> float:
        shares = self._fair_shares or {}
        return shares.get(tenant, self._fair_default_share)

    def _find_fair(
        self,
        template_cls: type,
        items: list[tuple[str, Any]],
        txn: Optional[Transaction],
    ) -> Optional[_Stored]:
        """First matching entry per DRR tenant selection (take path only).

        One pass collects the FIFO-first candidate of every tenant with a
        visible match; the deficit counters then pick the tenant.  The
        pass forces matching snapshots (it must read ``tenant``), which
        is why fair share is opt-in per space.
        """
        candidates: dict[str, _Stored] = {}
        for cls, bucket in self._buckets.items():
            if not bucket or not issubclass(cls, template_cls):
                continue
            for stored in self._scan_bucket(cls, bucket):
                if not self._visible(stored, txn):
                    continue
                if stored.read_lockers and not self._takeable(stored, txn):
                    continue
                if items and not matches_fields(items, stored.entry):
                    continue
                tenant = getattr(stored.entry, "tenant", None) or ""
                if tenant not in candidates:
                    candidates[tenant] = stored
        if not candidates:
            return None
        if len(candidates) == 1:
            (tenant, stored), = candidates.items()
            self._drr_deficit.pop(tenant, None)  # classic DRR: reset solo queue
            key = f"grants:{tenant or '-'}"
            self.fair_stats[key] = self.fair_stats.get(key, 0) + 1
            return stored
        chosen = self._drr_select(sorted(candidates))
        return candidates[chosen]

    def _drr_select(self, present: list[str]) -> str:
        """Deficit-round-robin tenant pick among the tenants ``present``.

        Deficits of tenants that dropped out (drained queue) reset to
        zero, the classic DRR rule that stops an idle tenant hoarding
        unbounded credit.
        """
        deficit = self._drr_deficit
        for tenant in list(deficit):
            if tenant not in present:
                del deficit[tenant]
        quantum = 1.0 / max(self._share_of(t) for t in present)
        while True:
            for tenant in present:
                if deficit.get(tenant, 0.0) >= 1.0:
                    deficit[tenant] -= 1.0
                    key = f"grants:{tenant or '-'}"
                    self.fair_stats[key] = self.fair_stats.get(key, 0) + 1
                    return tenant
            for tenant in present:
                deficit[tenant] = (deficit.get(tenant, 0.0)
                                   + self._share_of(tenant) * quantum)

    def _fair_applies(
        self, template_cls: type, items: list[tuple[str, Any]], take: bool
    ) -> bool:
        return (take and self._fair_shares is not None
                and template_cls.__name__ in self._fair_class_names
                and not any(name == "tenant" for name, _ in items))

    def _scan_bucket(self, cls: type, bucket: dict[int, _Stored]) -> Iterator[_Stored]:
        """Live entries of ``bucket`` in insertion order (scan-list walk);
        leading dead ids are retired as a side effect."""
        sl = self._scan_lists[cls]
        ids = sl.ids
        get = bucket.get
        i = sl.head
        n = len(ids)
        at_head = True
        while i < n:
            stored = get(ids[i])
            i += 1
            if stored is None:
                if at_head:
                    sl.head = i
                    sl.stale -= 1
                continue
            at_head = False
            yield stored

    def _find(
        self,
        template_cls: type,
        items: list[tuple[str, Any]],
        txn: Optional[Transaction],
        take: bool,
    ) -> Optional[_Stored]:
        if self._fair_shares is not None and self._fair_applies(
                template_cls, items, take):
            return self._find_fair(template_cls, items, txn)
        for cls, bucket in self._buckets.items():
            if not bucket or not issubclass(cls, template_cls):
                continue
            if items:
                candidates = self._candidate_ids(cls, items)
                if candidates is not None:
                    for entry_id in candidates:
                        stored = bucket.get(entry_id)
                        if stored is None:
                            continue
                        state = stored.state
                        if state != _AVAILABLE:
                            if state == _TAKEN or txn is None or stored.owner_txn is not txn:
                                continue
                        if stored.lease.is_expired():
                            continue
                        if take and stored.read_lockers and not self._takeable(stored, txn):
                            continue
                        if matches_fields(items, stored.entry):
                            return stored
                    continue
            # Insertion-order walk over the scan list, inlined rather than
            # through _scan_bucket: this loop is the per-op hot path and
            # in the common case returns its very first live entry.
            sl = self._scan_lists[cls]
            ids = sl.ids
            get = bucket.get
            i = sl.head
            n = len(ids)
            at_head = True
            while i < n:
                stored = get(ids[i])
                i += 1
                if stored is None:
                    if at_head:
                        sl.head = i
                        sl.stale -= 1
                    continue
                at_head = False
                # _visible, inlined.
                state = stored.state
                if state != _AVAILABLE:
                    if state == _TAKEN or txn is None or stored.owner_txn is not txn:
                        continue
                if stored.lease.is_expired():
                    continue
                if take and stored.read_lockers and not self._takeable(stored, txn):
                    continue
                # Class-only templates match without touching the snapshot.
                if not items or matches_fields(items, stored.entry):
                    return stored
        return None

    def _find_many(
        self,
        template_cls: type,
        items: list[tuple[str, Any]],
        txn: Optional[Transaction],
        take: bool,
        limit: int,
    ) -> list[_Stored]:
        """Up to ``limit`` matches in one walk (``take_multiple`` drain).

        Same candidate machinery as :meth:`_find`, but the index buckets
        (or class buckets) are traversed once for the whole batch —
        claims happen after collection, which is equivalent because a
        claim never changes another collected entry's visibility.
        """
        out: list[_Stored] = []
        for cls, bucket in self._buckets.items():
            if not bucket or not issubclass(cls, template_cls):
                continue
            if items:
                candidates = self._candidate_ids(cls, items)
                stored_iter: Any = (
                    self._scan_bucket(cls, bucket)
                    if candidates is None
                    else (bucket[i] for i in candidates if i in bucket)
                )
            else:
                stored_iter = self._scan_bucket(cls, bucket)
            for stored in stored_iter:
                if not self._visible(stored, txn):
                    continue
                if take and stored.read_lockers and not self._takeable(stored, txn):
                    continue
                if not items or matches_fields(items, stored.entry):
                    out.append(stored)
                    if len(out) >= limit:
                        return out
        return out

    def _iter_matching(
        self, template: Entry, txn: Optional[Transaction]
    ) -> Iterator[_Stored]:
        """Visible entries matching ``template``, index-prefiltered, FIFO
        within each class bucket (shared by ``contents`` and ``count``)."""
        template_cls = type(template)
        items = match_items(template)
        for cls, bucket in self._buckets.items():
            if not bucket or not issubclass(cls, template_cls):
                continue
            candidates = self._candidate_ids(cls, items) if items else None
            stored_iter: Any = (
                self._scan_bucket(cls, bucket)
                if candidates is None
                else (bucket[i] for i in candidates if i in bucket)
            )
            for stored in stored_iter:
                if not self._visible(stored, txn):
                    continue
                if not items or matches_fields(items, stored.entry):
                    yield stored

    def _visible(self, stored: _Stored, txn: Optional[Transaction]) -> bool:
        state = stored.state
        if state == _TAKEN:
            return False  # gone from every view
        if stored.lease.is_expired():
            return False
        if state == _AVAILABLE:
            return True
        return txn is not None and stored.owner_txn is txn  # _PENDING_WRITE

    def _takeable(self, stored: _Stored, txn: Optional[Transaction]) -> bool:
        """Shared read locks by *other* transactions block a take."""
        own = txn.txn_id if txn is not None else None
        return all(locker == own for locker in stored.read_lockers)

    # ----------------------------------------------------------------- wakeups --

    def _wake_waiters(self, stored: _Stored) -> None:
        """Wake every parked waiter whose template can match ``stored``.

        Only the wait queues along the entry class's MRO are consulted, and
        each woken waiter leaves its queue — so a burst of writes notifies
        a given waiter at most once, and non-matching waiters never wake.
        """
        waiters = self._waiters
        if not waiters:
            return
        wakeups = 0
        for cls in stored.cls.__mro__:
            queue = waiters.get(cls)
            if not queue:
                continue
            woke_here = False
            for waiter in queue:
                if waiter.woken:
                    continue
                if not waiter.items or matches_fields(waiter.items, stored.entry):
                    waiter.woken = True
                    waiter.cond.notify()
                    wakeups += 1
                    woke_here = True
            if woke_here:
                queue[:] = [w for w in queue if not w.woken]
        if wakeups:
            self._stat_wakeups += wakeups

    def _wake_txn_waiters(self, txn: Transaction) -> None:
        """Wake waiters blocked under ``txn`` so they observe its end."""
        for queue in self._waiters.values():
            woke_here = False
            for waiter in queue:
                if waiter.txn is txn and not waiter.woken:
                    waiter.woken = True
                    waiter.cond.notify()
                    self._stat_wakeups += 1
                    woke_here = True
            if woke_here:
                queue[:] = [w for w in queue if not w.woken]

    def _entry_became_visible(self, stored: _Stored) -> None:
        self._wake_waiters(stored)
        if not self._registrations:
            return
        alive: list[EventRegistration] = []
        for reg in self._registrations:
            if not reg.active():
                continue
            alive.append(reg)
            if not issubclass(stored.cls, type(reg.template)):
                continue
            reg_items = match_items(reg.template)
            if not reg_items or matches_fields(reg_items, stored.entry):
                event = RemoteEvent(self.name, reg.registration_id, reg.next_sequence())
                self._stat_events += 1
                # Deliver outside the monitor; listeners must not block, and
                # a listener's failure is its own problem, not the space's.
                self.runtime.call_later(
                    0.0, lambda r=reg, e=event: self._deliver_event(r, e)
                )
        self._registrations = alive

    def _deliver_event(self, registration: EventRegistration, event: RemoteEvent) -> None:
        try:
            registration.listener(event)
        except Exception:
            self._stat_listener_errors += 1

    # ------------------------------------------------------------------ expiry --

    def _remove(self, stored: _Stored) -> None:
        cls = stored.cls
        bucket = self._buckets.get(cls)
        if bucket is not None and bucket.pop(stored.entry_id, None) is not None:
            self._by_id.pop(stored.entry_id, None)
            self._unindex_entry(stored)
            sl = self._scan_lists.get(cls)
            if sl is not None:
                sl.stale += 1
                # Mid-list staleness (selective takes): rebuild once the
                # dead outnumber what is left to scan.  Head retirement
                # decrements ``stale``, so pure FIFO drains never rebuild.
                if sl.stale >= 64 and sl.stale * 2 >= len(sl.ids) - sl.head:
                    sl.ids = [i for i in sl.ids[sl.head:] if i in bucket]
                    sl.head = 0
                    sl.stale = 0

    def _reap_expired(self) -> None:
        """Collect expired and cancelled entries.

        O(reaped): cancelled ids arrive via lease ``on_cancel`` hooks, and
        finite-lease deadlines sit in a min-heap — when every lease is
        FOREVER and nothing was cancelled this is two empty checks.
        """
        cancelled = self._lease_cancelled
        if cancelled:
            # Explicit cancellations are journaled: unlike natural expiry
            # (an absolute deadline that replays by itself), a cancel is an
            # external state change the log must carry.
            journal: list[tuple] = []
            for entry_id in cancelled:
                stored = self._by_id.get(entry_id)
                if stored is not None and stored.state != _TAKEN:
                    self._stat_expired += 1
                    self._remove(stored)
                    if self.journaling and stored.state != _PENDING_WRITE:
                        journal.append(("take", entry_id))
            cancelled.clear()
            if journal:
                self._journal_ops(journal)
        heap = self._lease_heap
        if not heap:
            return
        now = self.runtime.now()
        while heap and heap[0][0] <= now:
            _, entry_id = heappop(heap)
            stored = self._by_id.get(entry_id)
            if stored is None:
                continue  # already taken/cancelled/removed
            lease = stored.lease
            if not lease.is_expired():
                # Renewed since it was queued; re-arm at the new deadline.
                if lease.expiration_ms != FOREVER:
                    heappush(heap, (lease.expiration_ms, entry_id))
                continue
            if stored.state != _TAKEN:
                self._stat_expired += 1
                self._remove(stored)
            # _TAKEN: the owning transaction settles its fate; an expired
            # restore is reaped in _complete_transaction.

    # ------------------------------------------------------------------- misc --

    def count(self, template: Entry, txn: Optional[Transaction] = None) -> int:
        """Number of visible entries matching ``template`` (diagnostic)."""
        with self._lock:
            self._reap_expired()
            return sum(1 for _ in self._iter_matching(template, txn))
