"""Transactions over the tuple space.

JavaSpaces transactional semantics (the paper: "In event of a partial
failure, the transaction either completes successfully or does not execute
at all"):

* a ``write`` under a transaction is invisible to other transactions until
  commit, and discarded on abort;
* a ``take`` under a transaction hides the entry from everyone; commit
  removes it permanently, abort restores it;
* a ``read`` under a transaction places a shared lock: others may read but
  not take until the transaction completes;
* a transaction is leased — if its lease expires before commit, the
  manager aborts it automatically.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import TransactionAbortedError, TransactionError
from repro.runtime.base import Runtime
from repro.tuplespace.lease import FOREVER, Lease

if TYPE_CHECKING:  # pragma: no cover
    from repro.tuplespace.space import JavaSpace

__all__ = ["Transaction", "TransactionManager"]

_STATE_ACTIVE = "active"
_STATE_COMMITTED = "committed"
_STATE_ABORTED = "aborted"


class Transaction:
    """A unit of atomic work spanning one or more spaces."""

    def __init__(self, manager: "TransactionManager", txn_id: int, lease: Lease) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.lease = lease
        self.state = _STATE_ACTIVE
        self._spaces: list["JavaSpace"] = []   # completion order (deterministic)
        self._space_ids: set[int] = set()      # O(1) membership for _enlist

    # -- space enrolment (called by JavaSpace) --------------------------------

    def _enlist(self, space: "JavaSpace") -> None:
        self.ensure_active()
        if id(space) not in self._space_ids:
            self._space_ids.add(id(space))
            self._spaces.append(space)

    # -- state ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        if self.state == _STATE_ACTIVE and self.lease.is_expired():
            # Lazy expiry: the lease ran out; abort on first observation.
            self.abort()
        return self.state == _STATE_ACTIVE

    def ensure_active(self) -> None:
        if not self.active:
            raise TransactionAbortedError(
                f"transaction {self.txn_id} is {self.state}"
            )

    # -- completion ----------------------------------------------------------------

    def commit(self) -> None:
        """Atomically apply all writes/takes across enlisted spaces."""
        if self.state == _STATE_COMMITTED:
            return
        if self.state == _STATE_ABORTED:
            raise TransactionAbortedError(f"transaction {self.txn_id} already aborted")
        if self.lease.is_expired():
            self.abort()
            raise TransactionAbortedError(
                f"transaction {self.txn_id} lease expired before commit"
            )
        self.state = _STATE_COMMITTED
        for space in self._spaces:
            space._complete_transaction(self, commit=True)
        self.lease.cancel()

    def abort(self) -> None:
        """Roll back: restore takes, discard writes, release read locks."""
        if self.state == _STATE_ABORTED:
            return
        if self.state == _STATE_COMMITTED:
            raise TransactionError(f"transaction {self.txn_id} already committed")
        self.state = _STATE_ABORTED
        for space in self._spaces:
            space._complete_transaction(self, commit=False)
        self.lease.cancel()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self.commit()
        else:
            if self.state == _STATE_ACTIVE:
                self.abort()


class TransactionManager:
    """Creates leased transactions and enforces their expiry.

    Expiry is enforced *server-side*: a watchdog armed at the lease
    deadline aborts the transaction (releasing its taken entries) even if
    the owning client connection stays perfectly healthy — a worker stuck
    in a long computation cannot sit on a task entry forever.  A renewed
    lease re-arms the watchdog at the new deadline instead of being
    forgotten.
    """

    def __init__(self, runtime: Runtime, metrics: Any = None) -> None:
        self._runtime = runtime
        self._metrics = metrics
        self._ids = itertools.count(1)
        self.created = 0
        self.aborted_by_lease = 0

    def create(self, timeout_ms: float = FOREVER) -> Transaction:
        """Create a transaction whose lease lasts ``timeout_ms``."""
        lease = Lease(self._runtime, timeout_ms)
        txn = Transaction(self, next(self._ids), lease)
        self.created += 1
        if timeout_ms != FOREVER:
            def _expire() -> None:
                if txn.state != _STATE_ACTIVE:
                    return
                if not txn.lease.is_expired():
                    # Renewed since the watchdog was armed: chase the new
                    # deadline (the old timer used to fire once and give up,
                    # leaving a renewed-then-abandoned txn immortal).
                    remaining = txn.lease.remaining_ms()
                    if remaining != FOREVER:
                        self._runtime.call_later(remaining, _expire)
                    return
                self.aborted_by_lease += 1
                txn.abort()
                if self._metrics is not None:
                    self._metrics.event("txn-lease-expired", txn_id=txn.txn_id)

            self._runtime.call_later(timeout_ms, _expire)
        return txn
