"""Durable tuple space: WAL-backed crash recovery and a hot standby.

:class:`DurableSpace` is a :class:`~repro.tuplespace.space.JavaSpace`
whose committed state changes flow into a
:class:`~repro.tuplespace.wal.WriteAheadLog`.  Crash recovery is
``DurableSpace.recover(runtime, store)``: install the latest snapshot,
replay the log tail, and the space matches the last *committed* state —
transactions open at the crash contributed nothing to the log, so they
are rolled back by construction (their takes reappear, their pending
writes never existed).

:class:`HotStandby` is the replication consumer: it opens a ``replicate``
stream to the primary's :class:`~repro.tuplespace.proxy.SpaceServer`,
bootstraps from the snapshot + log tail shipped in the reply, then
applies every streamed commit record to its own durable space.  On
``promote()`` it stops tailing and serves that space from a fresh
``SpaceServer`` — the failover sequence itself (detecting the dead
primary, re-registering with Jini lookup) lives in
:mod:`repro.tuplespace.failover`.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Any, Optional

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    NetworkError,
)
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime
from repro.tuplespace.proxy import SpaceServer
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.transaction import TransactionManager
from repro.tuplespace.wal import CommitRecord, WalStore, WriteAheadLog

__all__ = ["DurableSpace", "HotStandby"]


class DurableSpace(JavaSpace):
    """A JavaSpace whose committed state survives the machine.

    ``snapshot_every`` bounds replay: after that many commit batches the
    committed store is serialized into the WAL's snapshot slot and the
    log truncated.  ``None`` disables automatic snapshots (manual
    :meth:`checkpoint` only).
    """

    journaling = True

    def __init__(
        self,
        runtime: Runtime,
        name: str = "JavaSpaces",
        wal: Optional[WriteAheadLog] = None,
        snapshot_every: Optional[int] = 64,
        fsync_policy: str = "always",
        group_size: int = 64,
        group_commit_ms: Optional[float] = None,
        codec: str = "pickle",
    ) -> None:
        super().__init__(runtime, name, codec=codec)
        if wal is None:
            wal = WriteAheadLog(
                WalStore(fsync_policy=fsync_policy, group_size=group_size,
                         codec=codec),
                group_ms=group_commit_ms,
            )
        self.wal = wal
        self.wal.bind(runtime)
        self.snapshot_every = snapshot_every
        self._applying = False      # replay/replication: don't re-journal
        self._commits_since_snapshot = 0

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        runtime: Runtime,
        store: WalStore,
        name: str = "JavaSpaces",
        snapshot_every: Optional[int] = 64,
        group_commit_ms: Optional[float] = None,
        codec: str = "pickle",
    ) -> "DurableSpace":
        """Rebuild the last committed state from a surviving WAL store.

        ``codec`` only governs *new* bytes; the replayed log may hold
        frames from either codec (decode dispatches per frame), so
        recovering a pickle-era store under ``codec="compact"`` works.
        """
        store.codec = codec  # new frames adopt the recovering space's codec
        space = cls(runtime, name,
                    wal=WriteAheadLog(store, group_ms=group_commit_ms),
                    snapshot_every=snapshot_every, codec=codec)
        space._replay()
        return space

    def sync(self) -> None:
        """Durability barrier: flush any buffered commit group."""
        self.wal.sync()

    def _replay(self) -> None:
        self._applying = True
        try:
            snapshot = self.wal.store.snapshot
            base_lsn = 0
            if snapshot is not None:
                base_lsn = snapshot[0]
                self._install_state(snapshot[1])
            for record in self.wal.records_since(base_lsn):
                self._apply_ops(record.ops)
        finally:
            self._applying = False

    def _install_state(self, state: bytes) -> None:
        last_id, entries = pickle.loads(state)
        self._reset_state()
        for entry_id, data, expiration_ms in sorted(entries):
            self._restore(entry_id, data, expiration_ms)
        if last_id > self._last_id:
            self._last_id = last_id
            self._ids = itertools.count(last_id + 1)

    def _apply_ops(self, ops: tuple) -> None:
        for op in ops:
            if op[0] == "write":
                _, entry_id, data, expiration_ms = op
                if entry_id not in self._by_id:
                    self._restore(entry_id, data, expiration_ms)
            else:  # take
                self._discard(op[1])

    # -- journaling ----------------------------------------------------------

    def _journal_ops(self, ops: list) -> None:
        if self._applying:
            return
        self.wal.append(tuple(ops))
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        if self.snapshot_every is None:
            return
        self._commits_since_snapshot += 1
        if self._commits_since_snapshot >= self.snapshot_every:
            self._snapshot_locked()

    def checkpoint(self) -> None:
        """Snapshot the committed state now and truncate the log."""
        with self._lock:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        last_id, entries = self._committed_state()
        state = pickle.dumps((last_id, entries),
                             protocol=pickle.HIGHEST_PROTOCOL)
        self.wal.install_snapshot(self.wal.last_lsn, state)
        self._commits_since_snapshot = 0
        tracer = self.wal.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("wal.snapshot", trace_id="wal", proc="wal",
                           lsn=self.wal.last_lsn, entries=len(entries))

    # -- replication (standby side) -------------------------------------------

    def bootstrap(self, snapshot: Optional[tuple[int, bytes]],
                  records: list[CommitRecord],
                  epoch: Optional[int] = None) -> None:
        """Adopt a primary's snapshot + log tail (idempotent: anything at
        or below our current LSN is skipped, so a reconnect after a feed
        drop never regresses state).  ``epoch`` carries the primary's
        current epoch even when no commit has happened under it yet, so
        chained failovers keep strictly increasing epochs."""
        with self._lock:
            self._applying = True
            try:
                if epoch is not None:
                    self.wal.set_epoch(epoch)
                if snapshot is not None and snapshot[0] > self.wal.last_lsn:
                    self.wal.install_snapshot(snapshot[0], snapshot[1])
                    self._install_state(snapshot[1])
                for record in records:
                    if record.lsn > self.wal.last_lsn:
                        self.wal.import_record(record)
                        self._apply_ops(record.ops)
            finally:
                self._applying = False

    def apply_commit(self, record: CommitRecord) -> None:
        """Apply one streamed commit record (live replication)."""
        with self._lock:
            if record.lsn <= self.wal.last_lsn:
                return  # already covered by the bootstrap
            self._applying = True
            try:
                self.wal.import_record(record)
                self._apply_ops(record.ops)
            finally:
                self._applying = False
            self._maybe_snapshot()


class HotStandby:
    """Tails a primary space's commit stream into a local durable replica.

    The tail loop reconnects (bounded by ``max_retries`` consecutive
    failures) so a primary *restart* resumes replication; a primary
    *death* leaves the loop backing off until a supervisor calls
    :meth:`promote`, which stops the tail and serves the caught-up
    replica on ``address``.
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        primary_address: Address,
        address: Address,
        name: str = "JavaSpaces-standby",
        snapshot_every: Optional[int] = 64,
        retry_ms: float = 200.0,
        max_retries: int = 50,
        metrics: Any = None,
        sync_replication: bool = False,
        repl_ack_timeout_ms: float = 500.0,
        codec: str = "pickle",
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.primary_address = primary_address
        self.address = address
        self.space = DurableSpace(runtime, name=name,
                                  snapshot_every=snapshot_every, codec=codec)
        self.retry_ms = retry_ms
        self.max_retries = max_retries
        self.metrics = metrics
        #: Carried onto the server this standby becomes when promoted, so
        #: commit-gating survives a failover chain.
        self.sync_replication = sync_replication
        self.repl_ack_timeout_ms = repl_ack_timeout_ms
        self.caught_up = False
        self.promoted = False
        self.server: Optional[SpaceServer] = None
        self._running = False
        self._conn: Optional[StreamSocket] = None

    @property
    def applied_lsn(self) -> int:
        """Highest WAL frame applied to the replica — the primary's
        ``last_lsn`` minus this is the replication lag in frames."""
        return self.space.wal.last_lsn

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.runtime.spawn(self._tail, name=f"standby-tail:{self.host}")

    def stop(self) -> None:
        self._running = False
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()
        if self.server is not None:
            self.server.stop(drain_ms=0.0)

    def promote(self, txn_manager: Optional[TransactionManager] = None) -> SpaceServer:
        """Stop tailing and serve the replica at ``self.address``.

        The epoch is bumped *before* the first request is served, so
        every commit the new primary accepts is stamped with the new
        epoch — the deposed primary (and any proxy still bound to it)
        is fenced from that instant on.
        """
        self.promoted = True
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()
        self.space.wal.bump_epoch()
        self.server = SpaceServer(
            self.runtime, self.space, self.network, self.address,
            txn_manager=txn_manager,
        )
        self.server.fencing = True
        self.server.sync_replication = self.sync_replication
        self.server.repl_ack_timeout_ms = self.repl_ack_timeout_ms
        self.server.start()
        if self.metrics is not None:
            self.metrics.event("standby-promoted", host=self.host,
                               lsn=self.space.wal.last_lsn,
                               epoch=self.space.wal.epoch)
        return self.server

    # -- the tail loop ---------------------------------------------------------

    def _tail(self) -> None:
        failures = 0
        while self._running and not self.promoted:
            try:
                conn = self.network.connect(self.host, self.primary_address)
                self._conn = conn
                conn.send({"op": "replicate",
                           "args": {"from_lsn": self.space.wal.last_lsn}})
                reply = conn.receive(timeout_ms=None)
                if reply is None or not reply.get("ok"):
                    raise ConnectionClosedError("replication bootstrap refused")
                value = reply["value"]
                self.space.bootstrap(value["snapshot"], value["records"],
                                     epoch=value.get("epoch"))
                failures = 0
                # Confirm what we durably hold — after the bootstrap and
                # after every applied batch.  The ack travels standby →
                # primary on the feed connection, the direction an egress
                # partition of the primary leaves open, which is what lets
                # a cut-off primary *notice* replication has stalled and
                # stop acknowledging clients (see SpaceServer.sync_replication).
                conn.send({"repl_ack": self.space.wal.last_lsn})
                if not self.caught_up:
                    self.caught_up = True
                    if self.metrics is not None:
                        self.metrics.event("standby-caught-up", host=self.host,
                                           lsn=self.space.wal.last_lsn)
                while self._running and not self.promoted:
                    message = conn.receive(timeout_ms=None)
                    if message is None:
                        continue
                    # The feed ships commit *batches* (records coalesced
                    # within one kernel tick); single-record messages are
                    # accepted too for compatibility.
                    batch = message.get("repl_batch")
                    if batch is not None:
                        for record in batch:
                            self._apply_contiguous(conn, record)
                        conn.send({"repl_ack": self.space.wal.last_lsn})
                        continue
                    record = message.get("repl")
                    if record is not None:
                        self._apply_contiguous(conn, record)
                        conn.send({"repl_ack": self.space.wal.last_lsn})
            except (ConnectionClosedError, ConnectionRefusedError_, NetworkError):
                if not self._running or self.promoted:
                    return
                failures += 1
                if failures > self.max_retries:
                    if self.metrics is not None:
                        self.metrics.event("standby-gave-up", host=self.host)
                    return
                self.runtime.sleep(self.retry_ms)
        self._conn = None

    def _apply_contiguous(self, conn: StreamSocket, record: Any) -> None:
        """Apply one streamed record, refusing to ack across a hole.

        LSNs are dense, so a record more than one ahead means an earlier
        feed message was silently dropped (a partition eats batches
        without closing the stream).  Acking ``last_lsn`` past such a
        hole would tell the primary the missing commits are safe when
        they are gone — so tear the feed down and re-bootstrap from our
        true LSN instead; the bootstrap reply fills the gap exactly.
        """
        if record.lsn > self.space.wal.last_lsn + 1:
            have = self.space.wal.last_lsn
            conn.close()
            raise ConnectionClosedError(
                f"replication gap: have lsn {have}, got {record.lsn}")
        self.space.apply_commit(record)
