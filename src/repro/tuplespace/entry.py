"""Entry model and associative template matching.

JavaSpaces semantics: a template ``T`` matches a candidate entry ``E`` iff
``E`` is of ``T``'s class or a subclass, and every non-``None`` public
field of ``T`` equals the corresponding field of ``E``.  ``None`` fields
are wildcards.

Matching is the innermost loop of every space operation, so this module
avoids building a dict per candidate: ``matches`` walks ``vars()``
directly, and ``match_items``/``matches_fields`` let the space hoist the
template's non-``None`` fields out of the candidate loop entirely.
``entry_fields`` keeps its public dict-returning API but serves the field
*names* from a per-class cache.
"""

from __future__ import annotations

import sys
from typing import Any

__all__ = [
    "Entry",
    "entry_fields",
    "match_items",
    "matches",
    "matches_fields",
    "values_equal",
]


class Entry:
    """Base class for space entries.

    Subclasses are plain Python classes; every instance attribute whose
    name does not start with ``_`` is a *public field* that participates
    in matching.  Entries must be picklable (enforced at ``write``).
    """

    def shard_key(self) -> Any:
        """The routable key for sharded spaces.

        The default routes on ``task_id`` when the entry declares one
        (``TaskEntry``/``ResultEntry`` pairs land on the same shard, so a
        take-task + write-result transaction stays shard-local).
        Subclasses may override to route on another field.  ``None``
        means *no route*: as an entry, write to the class's home shard;
        as a template, scatter-gather across all shards.
        """
        return getattr(self, "task_id", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in entry_fields(self).items())
        return f"{type(self).__name__}({fields})"


#: cls → (public field names, total attr count when cached).  Instances of
#: one class almost always share an attribute layout; the count check
#: detects the rare instance that diverges and falls back to a recompute.
_FIELDS_CACHE: dict[type, tuple[tuple[str, ...], int]] = {}


def entry_fields(entry: Entry) -> dict[str, Any]:
    """Public (matchable) fields of an entry instance."""
    attrs = vars(entry)
    cls = type(entry)
    cached = _FIELDS_CACHE.get(cls)
    if cached is not None:
        names, total = cached
        if total == len(attrs):
            try:
                return {name: attrs[name] for name in names}
            except KeyError:
                pass
    names = tuple(k for k in attrs if not k.startswith("_"))
    _FIELDS_CACHE[cls] = (names, len(attrs))
    return {name: attrs[name] for name in names}


def values_equal(a: Any, b: Any) -> bool:
    """Field equality that is safe for numpy arrays and containers.

    The tuple-space core has no hard numpy dependency: an ndarray can
    only reach a field if *something* already imported numpy, so the
    array check consults ``sys.modules`` instead of importing — a plain
    dict lookup on the hot path, and no import when numpy is absent.
    """
    np = sys.modules.get("numpy")
    if np is not None and (isinstance(a, np.ndarray) or isinstance(b, np.ndarray)):
        try:
            return bool(np.array_equal(a, b))
        except Exception:
            return False
    try:
        return bool(a == b)
    except Exception:
        return False


def match_items(template: Entry) -> list[tuple[str, Any]]:
    """The template's non-``None`` public fields as ``(name, value)`` pairs.

    Computing this once per operation (instead of per candidate) is what
    makes a scan over a large bucket cheap.
    """
    return [
        (name, value)
        for name, value in vars(template).items()
        if value is not None and not name.startswith("_")
    ]


def matches_fields(items: list[tuple[str, Any]], candidate: Entry) -> bool:
    """Field-wise match of precomputed ``match_items`` against a candidate.

    The caller is responsible for the class check (``isinstance`` or an
    equivalent bucket-level ``issubclass`` test).
    """
    candidate_attrs = vars(candidate)
    for name, value in items:
        if name not in candidate_attrs:
            return False
        if not values_equal(candidate_attrs[name], value):
            return False
    return True


def matches(template: Entry, candidate: Entry) -> bool:
    """True iff ``template`` matches ``candidate`` under JavaSpaces rules."""
    if not isinstance(candidate, type(template)):
        return False
    candidate_attrs = vars(candidate)
    for name, value in vars(template).items():
        if value is None or name.startswith("_"):
            continue
        if name not in candidate_attrs:
            return False
        if not values_equal(candidate_attrs[name], value):
            return False
    return True
