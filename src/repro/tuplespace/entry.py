"""Entry model and associative template matching.

JavaSpaces semantics: a template ``T`` matches a candidate entry ``E`` iff
``E`` is of ``T``'s class or a subclass, and every non-``None`` public
field of ``T`` equals the corresponding field of ``E``.  ``None`` fields
are wildcards.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Entry", "entry_fields", "matches", "values_equal"]


class Entry:
    """Base class for space entries.

    Subclasses are plain Python classes; every instance attribute whose
    name does not start with ``_`` is a *public field* that participates
    in matching.  Entries must be picklable (enforced at ``write``).
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in entry_fields(self).items())
        return f"{type(self).__name__}({fields})"


def entry_fields(entry: Entry) -> dict[str, Any]:
    """Public (matchable) fields of an entry instance."""
    return {k: v for k, v in vars(entry).items() if not k.startswith("_")}


def values_equal(a: Any, b: Any) -> bool:
    """Field equality that is safe for numpy arrays and containers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        try:
            return bool(np.array_equal(a, b))
        except Exception:
            return False
    try:
        return bool(a == b)
    except Exception:
        return False


def matches(template: Entry, candidate: Entry) -> bool:
    """True iff ``template`` matches ``candidate`` under JavaSpaces rules."""
    if not isinstance(candidate, type(template)):
        return False
    candidate_fields = vars(candidate)
    for name, value in entry_fields(template).items():
        if value is None:
            continue
        if name not in candidate_fields:
            return False
        if not values_equal(candidate_fields[name], value):
            return False
    return True
