"""Leases: time-bounded grants on entries, registrations and transactions.

Jini's leasing discipline — every distributed resource is granted for a
finite time and must be renewed — is what lets the space survive crashed
clients: abandoned resources expire instead of leaking.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import LeaseError
from repro.runtime.base import Runtime

__all__ = ["Lease", "FOREVER"]

#: Sentinel duration meaning "never expires" (Lease.FOREVER in Jini).
FOREVER = math.inf


class Lease:
    """A grant that expires at ``expiration_ms`` of runtime time.

    ``on_cancel`` is invoked when the lease is cancelled explicitly;
    expiry itself is checked lazily by the resource owner via
    :meth:`is_expired` (the space also runs a reaper).
    """

    def __init__(
        self,
        runtime: Runtime,
        duration_ms: float = FOREVER,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        if duration_ms < 0:
            raise LeaseError(f"negative lease duration: {duration_ms}")
        self._runtime = runtime
        self._on_cancel = on_cancel
        now = runtime.now()
        self.granted_at = now
        self.expiration_ms = (
            FOREVER if duration_ms == FOREVER else now + duration_ms
        )
        self.cancelled = False

    def is_expired(self) -> bool:
        if self.cancelled:
            return True
        expiration = self.expiration_ms
        # FOREVER short-circuit: visibility checks run per candidate on the
        # space's hot path, and most entries never carry a finite lease.
        return expiration != FOREVER and self._runtime.now() >= expiration

    def remaining_ms(self) -> float:
        if self.cancelled:
            return 0.0
        if self.expiration_ms == FOREVER:
            return FOREVER
        return max(0.0, self.expiration_ms - self._runtime.now())

    def renew(self, duration_ms: float) -> None:
        """Extend the lease by ``duration_ms`` from *now* (Jini renewal)."""
        if self.is_expired():
            raise LeaseError("cannot renew an expired or cancelled lease")
        if duration_ms == FOREVER:
            self.expiration_ms = FOREVER
        else:
            self.expiration_ms = self._runtime.now() + duration_ms

    def cancel(self) -> None:
        """Relinquish the grant immediately."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
