"""Write-ahead log for the durable tuple space.

The unit of durability is the :class:`CommitRecord`: an atomic batch of
``("write", entry_id, data, expiration_ms)`` / ``("take", entry_id)``
operations appended exactly when they become *committed* state — a bare
``write`` logs one record, a transaction logs a single record with its
whole net effect at commit.  Operations of a transaction that never
commits are never logged, which is what makes recovery roll open
transactions back for free.

Storage sits behind :class:`WalStore` so "the disk" can be whatever
survives the failure being modelled: the in-memory store survives a
``SpaceServer.crash()`` plus the loss of the space object (machine loss
in the simulation), while :class:`FileWalStore` puts the same bytes on a
real filesystem.  A periodic *snapshot* — the serialized committed store
— bounds replay time: installing one truncates every record it already
covers.

The log is also the replication feed: a hot standby subscribes and
receives every appended record in commit order (see
:mod:`repro.tuplespace.durable`).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SpaceError

__all__ = ["CommitRecord", "WalStore", "FileWalStore", "WriteAheadLog",
           "OP_WRITE", "OP_TAKE"]

OP_WRITE = "write"
OP_TAKE = "take"


@dataclass(frozen=True)
class CommitRecord:
    """One atomic batch of committed operations.

    ``ops`` is a tuple of ``(OP_WRITE, entry_id, data, expiration_ms)``
    and ``(OP_TAKE, entry_id)`` tuples; ``expiration_ms`` is *absolute*
    virtual time (``math.inf`` for FOREVER) so replay reconstructs the
    remaining lease instead of restarting it.
    """

    lsn: int
    ops: tuple[tuple, ...]


class WalStore:
    """In-memory durable medium: a snapshot slot plus the record tail.

    The object models the disk — hand the *same store* to a recovering
    space after discarding the crashed one and the committed state comes
    back.  Subclasses persist the same structure elsewhere.
    """

    def __init__(self) -> None:
        self.snapshot: Optional[tuple[int, bytes]] = None  # (lsn, state)
        self.records: list[CommitRecord] = []

    def append(self, record: CommitRecord) -> None:
        self.records.append(record)

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        """Persist ``state`` covering everything up to ``lsn`` and drop
        the records it makes redundant."""
        self.snapshot = (lsn, state)
        self.records = [r for r in self.records if r.lsn > lsn]

    def last_lsn(self) -> int:
        if self.records:
            return self.records[-1].lsn
        if self.snapshot is not None:
            return self.snapshot[0]
        return 0


class FileWalStore(WalStore):
    """File-backed store: snapshot and log as pickle-framed files.

    Layout: ``<path>.snap`` holds ``(lsn, state)``; ``<path>.log`` holds
    consecutive pickled :class:`CommitRecord` frames (``pickle.load``
    framing is self-delimiting).  Appends flush immediately — the WAL
    contract is that an acknowledged commit survives the process.
    """

    def __init__(self, path) -> None:
        super().__init__()
        path = os.fspath(path)
        self._snap_path = path + ".snap"
        self._log_path = path + ".log"
        self._load()
        self._log_fh = open(self._log_path, "ab")

    def _load(self) -> None:
        if os.path.exists(self._snap_path):
            with open(self._snap_path, "rb") as fh:
                self.snapshot = pickle.load(fh)
        if os.path.exists(self._log_path):
            with open(self._log_path, "rb") as fh:
                while True:
                    try:
                        record = pickle.load(fh)
                    except EOFError:
                        break
                    self.records.append(record)
        if self.snapshot is not None:
            lsn = self.snapshot[0]
            self.records = [r for r in self.records if r.lsn > lsn]

    def append(self, record: CommitRecord) -> None:
        super().append(record)
        self._log_fh.write(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self._log_fh.flush()

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        super().install_snapshot(lsn, state)
        with open(self._snap_path, "wb") as fh:
            pickle.dump((lsn, state), fh, protocol=pickle.HIGHEST_PROTOCOL)
        # Rewrite the log with only the surviving tail.
        self._log_fh.close()
        with open(self._log_path, "wb") as fh:
            for record in self.records:
                fh.write(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self._log_fh = open(self._log_path, "ab")

    def close(self) -> None:
        self._log_fh.close()


class WriteAheadLog:
    """Commit-ordered log with snapshot truncation and live subscribers.

    ``append`` assigns the next LSN; ``import_record`` preserves the LSN
    of a record replicated from a primary, so a promoted standby's log
    lines up with the stream it tailed.  Subscribers (replication
    channels) are invoked synchronously in commit order.
    """

    def __init__(self, store: Optional[WalStore] = None) -> None:
        self.store = store if store is not None else WalStore()
        self._subscribers: list[Callable[[CommitRecord], None]] = []

    # -- writing ------------------------------------------------------------

    def append(self, ops: tuple[tuple, ...]) -> CommitRecord:
        record = CommitRecord(self.store.last_lsn() + 1, tuple(ops))
        self.store.append(record)
        self._notify(record)
        return record

    def import_record(self, record: CommitRecord) -> None:
        """Adopt a replicated record verbatim (standby tail path)."""
        if record.lsn <= self.store.last_lsn():
            raise SpaceError(
                f"stale replicated record lsn={record.lsn} "
                f"(log is at {self.store.last_lsn()})"
            )
        self.store.append(record)
        self._notify(record)

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        self.store.install_snapshot(lsn, state)

    # -- reading ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self.store.last_lsn()

    def records_since(self, lsn: int) -> list[CommitRecord]:
        """Every stored record with an LSN strictly greater than ``lsn``."""
        return [r for r in self.store.records if r.lsn > lsn]

    # -- replication feed ---------------------------------------------------

    def subscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, record: CommitRecord) -> None:
        for callback in list(self._subscribers):
            callback(record)


def op_write(entry_id: int, data: bytes, expiration_ms: float) -> tuple:
    return (OP_WRITE, entry_id, data, expiration_ms)


def op_take(entry_id: int) -> tuple:
    return (OP_TAKE, entry_id)


def describe_ops(ops: tuple[tuple, ...]) -> str:
    """Compact human rendering used by logs and tests."""
    parts = []
    for op in ops:
        if op[0] == OP_WRITE:
            parts.append(f"w#{op[1]}")
        else:
            parts.append(f"t#{op[1]}")
    return ",".join(parts)


def state_of(obj: Any) -> bytes:  # pragma: no cover - convenience alias
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
