"""Write-ahead log for the durable tuple space.

The unit of durability is the :class:`CommitRecord`: an atomic batch of
``("write", entry_id, data, expiration_ms)`` / ``("take", entry_id)``
operations appended exactly when they become *committed* state — a bare
``write`` logs one record, a transaction logs a single record with its
whole net effect at commit.  Operations of a transaction that never
commits are never logged, which is what makes recovery roll open
transactions back for free.

Storage sits behind :class:`WalStore` so "the disk" can be whatever
survives the failure being modelled: the in-memory store survives a
``SpaceServer.crash()`` plus the loss of the space object (machine loss
in the simulation), while :class:`FileWalStore` puts the same bytes on a
real filesystem.  A periodic *snapshot* — the serialized committed store
— bounds replay time: installing one truncates every record it already
covers.

Group commit & fsync policy
---------------------------
Every store takes an ``fsync_policy``:

* ``"always"`` (default) — each appended record is persisted *and*
  fsynced before the append returns.  An acknowledged commit survives
  power loss; every commit pays one durability barrier.
* ``"group"`` — records buffer and are persisted+fsynced together when
  the group reaches ``group_size`` records (or when the owning
  :class:`WriteAheadLog`'s ``group_ms`` time watermark fires, or on an
  explicit :meth:`WalStore.sync`).  One barrier amortizes over the whole
  group, multiplying commit throughput — the tradeoff is that commits
  acknowledged after the last barrier can vanish on *power loss* (they
  still survive a process crash, which keeps the OS page cache).
* ``"os"`` — persist to the OS (write+flush) per record, never fsync.
  Fast, survives process crashes, loses the tail since the last explicit
  barrier on power loss.

Snapshot compaction is crash-safe: pending records are synced, the new
snapshot is written to a temp file, fsynced, and atomically renamed into
place *before* the log is truncated (itself via temp-write → fsync →
rename).  A crash at any point leaves either the old snapshot with the
full log or the new snapshot with a (possibly still-full) log — both
recover to the same committed state, since replay skips records at or
below the snapshot LSN.

The log is also the replication feed: a hot standby subscribes and
receives every appended record in commit order (see
:mod:`repro.tuplespace.durable`).  Replication is independent of the
fsync policy — records ship as they commit, not as they hit the disk.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SpaceError

__all__ = ["CommitRecord", "WalStore", "FileWalStore", "WriteAheadLog",
           "OP_WRITE", "OP_TAKE", "FSYNC_POLICIES"]

OP_WRITE = "write"
OP_TAKE = "take"

#: Valid values for the ``fsync_policy`` knob, strongest first.
FSYNC_POLICIES = ("always", "group", "os")


@dataclass(frozen=True)
class CommitRecord:
    """One atomic batch of committed operations.

    ``ops`` is a tuple of ``(OP_WRITE, entry_id, data, expiration_ms)``
    and ``(OP_TAKE, entry_id)`` tuples; ``expiration_ms`` is *absolute*
    virtual time (``math.inf`` for FOREVER) so replay reconstructs the
    remaining lease instead of restarting it.
    """

    lsn: int
    ops: tuple[tuple, ...]
    #: Primary epoch under which the batch committed.  Monotonically
    #: non-decreasing along the log; a promoted standby bumps it before
    #: serving, which fences the deposed primary (see ``failover.py``).
    #: Defaults to 0 so logs written before fencing existed still load.
    epoch: int = 0


class WalStore:
    """In-memory durable medium: a snapshot slot plus the record tail.

    The object models the disk — hand the *same store* to a recovering
    space after discarding the crashed one and the committed state comes
    back (that models a process/machine crash, which preserves the OS
    page cache).  :meth:`power_loss` models losing power as well: every
    record past the last durability barrier is discarded, which is
    exactly what the ``group`` and ``os`` policies risk.

    Subclasses persist the same structure elsewhere.
    """

    def __init__(self, fsync_policy: str = "always",
                 group_size: int = 64) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise SpaceError(
                f"unknown fsync_policy {fsync_policy!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if group_size < 1:
            raise SpaceError(f"group_size must be >= 1: {group_size}")
        self.fsync_policy = fsync_policy
        self.group_size = group_size
        self.snapshot: Optional[tuple[int, bytes]] = None  # (lsn, state)
        #: Highest primary epoch this store has durably observed.  It is
        #: replayed on recovery so a restarted primary knows whether it
        #: has been superseded while down.
        self.epoch = 0
        self.records: list[CommitRecord] = []
        #: Records in ``records[:_synced]`` are behind a durability
        #: barrier; the tail is pending (buffered or OS-cached only).
        self._synced = 0
        #: Durability barriers issued (fsyncs, for the file store).
        self.syncs = 0

    # -- appending ----------------------------------------------------------

    def set_epoch(self, epoch: int) -> None:
        """Adopt ``epoch`` if it is newer; epochs never move backwards."""
        if epoch > self.epoch:
            self.epoch = epoch
            self._persist_epoch()

    def _persist_epoch(self) -> None:
        """Make the epoch durable (overridden by :class:`FileWalStore`)."""

    def append(self, record: CommitRecord) -> None:
        if record.epoch > self.epoch:
            self.set_epoch(record.epoch)
        self.records.append(record)
        if self.fsync_policy == "group":
            if self.pending() >= self.group_size:
                self.sync()
        else:
            self._persist([record])
            if self.fsync_policy == "always":
                self._synced = len(self.records)
                self._fsync()

    def pending(self) -> int:
        """Records appended but not yet behind a durability barrier."""
        return len(self.records) - self._synced

    def sync(self) -> None:
        """Durability barrier: persist and fsync everything pending."""
        if self.fsync_policy == "group":
            tail = self.records[self._synced:]
            if tail:
                self._persist(tail)
        self._synced = len(self.records)
        self._fsync()

    # -- persistence hooks (overridden by FileWalStore) ----------------------

    def _persist(self, records: list[CommitRecord]) -> None:
        """Hand ``records`` to the medium (OS write; in-memory: no-op)."""

    def _fsync(self) -> None:
        self.syncs += 1

    # -- failure modelling ----------------------------------------------------

    def power_loss(self) -> int:
        """Discard every record not behind a durability barrier.

        Models power loss (as opposed to a process crash, which this
        object survives wholesale).  Returns how many acknowledged
        commits vanished — 0 under ``fsync_policy="always"``.
        """
        lost = len(self.records) - self._synced
        del self.records[self._synced:]
        return lost

    # -- snapshotting ---------------------------------------------------------

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        """Persist ``state`` covering everything up to ``lsn`` and drop
        the records it makes redundant.  Acts as a durability barrier:
        the snapshot is durable before the log loses anything."""
        self.sync()
        self.snapshot = (lsn, state)
        self.records = [r for r in self.records if r.lsn > lsn]
        self._synced = len(self.records)

    def last_lsn(self) -> int:
        if self.records:
            return self.records[-1].lsn
        if self.snapshot is not None:
            return self.snapshot[0]
        return 0


class FileWalStore(WalStore):
    """File-backed store: snapshot and log as pickle-framed files.

    Layout: ``<path>.snap`` holds ``(lsn, state)``; ``<path>.log`` holds
    consecutive pickled :class:`CommitRecord` frames (``pickle.load``
    framing is self-delimiting).  The WAL contract under the default
    ``fsync_policy="always"`` is that an acknowledged commit survives
    power loss — each append is written, flushed *and fsynced*.  See the
    module docstring for what ``group`` and ``os`` trade away.
    """

    def __init__(self, path, fsync_policy: str = "always",
                 group_size: int = 64) -> None:
        super().__init__(fsync_policy=fsync_policy, group_size=group_size)
        path = os.fspath(path)
        self._snap_path = path + ".snap"
        self._log_path = path + ".log"
        self._epoch_path = path + ".epoch"
        self._load()
        self._log_fh = open(self._log_path, "ab")

    def _persist_epoch(self) -> None:
        # The epoch is a promise never to accept older writes, so it must
        # be durable *before* any commit made under it — atomic replace
        # keeps a crash from leaving a torn value.
        self._write_atomic(
            self._epoch_path,
            lambda fh: fh.write(str(self.epoch).encode("ascii")),
        )

    def _load(self) -> None:
        if os.path.exists(self._epoch_path):
            with open(self._epoch_path, "rb") as fh:
                self.epoch = int(fh.read().decode("ascii") or "0")
        if os.path.exists(self._snap_path):
            with open(self._snap_path, "rb") as fh:
                self.snapshot = pickle.load(fh)
        if os.path.exists(self._log_path):
            with open(self._log_path, "rb") as fh:
                while True:
                    try:
                        record = pickle.load(fh)
                    except EOFError:
                        break
                    except pickle.UnpicklingError:
                        break  # torn tail frame from a mid-write crash
                    self.records.append(record)
        if self.snapshot is not None:
            lsn = self.snapshot[0]
            self.records = [r for r in self.records if r.lsn > lsn]
        # Records written before the epoch sidecar existed (or by older
        # versions) may still carry a higher epoch than the sidecar.
        for record in self.records:
            if getattr(record, "epoch", 0) > self.epoch:
                self.epoch = record.epoch
        self._synced = len(self.records)

    def _persist(self, records: list[CommitRecord]) -> None:
        fh = self._log_fh
        for record in records:
            fh.write(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        fh.flush()

    def _fsync(self) -> None:
        super()._fsync()
        os.fsync(self._log_fh.fileno())

    @staticmethod
    def _write_atomic(path: str, writer: Callable[[Any], None]) -> None:
        """temp-write → fsync → rename: the file at ``path`` is either
        the old complete version or the new complete version, never a
        torn intermediate."""
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        # Crash-safe compaction order: (1) pending records hit the disk,
        # (2) the new snapshot becomes durable atomically, (3) only then
        # is the log truncated (also atomically).  A crash between any
        # two steps recovers correctly — replay skips records <= lsn.
        self.sync()
        WalStore.install_snapshot(self, lsn, state)  # updates memory view
        self._write_atomic(
            self._snap_path,
            lambda fh: pickle.dump((lsn, state), fh,
                                   protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._log_fh.close()

        def write_tail(fh) -> None:
            for record in self.records:
                fh.write(pickle.dumps(record,
                                      protocol=pickle.HIGHEST_PROTOCOL))

        self._write_atomic(self._log_path, write_tail)
        self._log_fh = open(self._log_path, "ab")
        self._synced = len(self.records)

    def close(self) -> None:
        self.sync()
        self._log_fh.close()


class WriteAheadLog:
    """Commit-ordered log with snapshot truncation and live subscribers.

    ``append`` assigns the next LSN; ``import_record`` preserves the LSN
    of a record replicated from a primary, so a promoted standby's log
    lines up with the stream it tailed.  Subscribers (replication
    channels) are invoked synchronously in commit order.

    With a ``runtime`` and ``group_ms``, a *time watermark* backs the
    store's size watermark under ``fsync_policy="group"``: the first
    record to buffer arms a one-shot flush ``group_ms`` later, so a lull
    in traffic can delay durability by at most that long.
    """

    def __init__(self, store: Optional[WalStore] = None,
                 runtime: Any = None,
                 group_ms: Optional[float] = None) -> None:
        self.store = store if store is not None else WalStore()
        self.group_ms = group_ms
        self._runtime = runtime
        self._flush_armed = False
        self._subscribers: list[Callable[[CommitRecord], None]] = []
        #: Optional telemetry tracer; when enabled, each commit/sync drops
        #: an instant marker under the ``"wal"`` trace.  Set by the
        #: framework — the log itself never requires telemetry.
        self.tracer: Any = None

    def bind(self, runtime: Any) -> None:
        """Late-bind the runtime that drives the time watermark."""
        if self._runtime is None:
            self._runtime = runtime

    # -- writing ------------------------------------------------------------

    def append(self, ops: tuple[tuple, ...]) -> CommitRecord:
        record = CommitRecord(self.store.last_lsn() + 1, tuple(ops),
                              self.store.epoch)
        self.store.append(record)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("wal.commit", trace_id="wal", proc="wal",
                           lsn=record.lsn, ops=len(record.ops))
        self._notify(record)
        self._arm_flush()
        return record

    def import_record(self, record: CommitRecord) -> None:
        """Adopt a replicated record verbatim (standby tail path)."""
        if record.lsn <= self.store.last_lsn():
            raise SpaceError(
                f"stale replicated record lsn={record.lsn} "
                f"(log is at {self.store.last_lsn()})"
            )
        self.store.append(record)
        self._notify(record)
        self._arm_flush()

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        self.store.install_snapshot(lsn, state)

    def sync(self) -> None:
        """Durability barrier: flush any buffered group to the medium."""
        self.store.sync()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("wal.sync", trace_id="wal", proc="wal",
                           lsn=self.store.last_lsn())

    def _arm_flush(self) -> None:
        if (self._runtime is None or self.group_ms is None
                or self._flush_armed or self.store.pending() == 0):
            return
        self._flush_armed = True
        self._runtime.call_later(self.group_ms, self._flush_due)

    def _flush_due(self) -> None:
        self._flush_armed = False
        if self.store.pending():
            self.store.sync()
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant("wal.sync", trace_id="wal", proc="wal",
                               lsn=self.store.last_lsn(), group_flush=True)

    # -- reading ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self.store.last_lsn()

    # -- epoch fencing ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The primary epoch this log last committed (or adopted) under."""
        return self.store.epoch

    def set_epoch(self, epoch: int) -> None:
        """Adopt a newer epoch (monotonic; older values are ignored)."""
        self.store.set_epoch(epoch)

    def bump_epoch(self) -> int:
        """Durably advance to the next epoch and return it.

        Called by a standby at promotion time, *before* it starts
        serving — every commit it accepts is stamped with the new epoch,
        and the deposed primary's lower epoch can never pass the fence
        again."""
        self.store.set_epoch(self.store.epoch + 1)
        return self.store.epoch

    def records_since(self, lsn: int) -> list[CommitRecord]:
        """Every stored record with an LSN strictly greater than ``lsn``."""
        return [r for r in self.store.records if r.lsn > lsn]

    # -- replication feed ---------------------------------------------------

    def subscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, record: CommitRecord) -> None:
        for callback in list(self._subscribers):
            callback(record)


def op_write(entry_id: int, data: bytes, expiration_ms: float) -> tuple:
    return (OP_WRITE, entry_id, data, expiration_ms)


def op_take(entry_id: int) -> tuple:
    return (OP_TAKE, entry_id)


def describe_ops(ops: tuple[tuple, ...]) -> str:
    """Compact human rendering used by logs and tests."""
    parts = []
    for op in ops:
        if op[0] == OP_WRITE:
            parts.append(f"w#{op[1]}")
        else:
            parts.append(f"t#{op[1]}")
    return ",".join(parts)


def state_of(obj: Any) -> bytes:  # pragma: no cover - convenience alias
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
