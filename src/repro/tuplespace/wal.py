"""Write-ahead log for the durable tuple space.

The unit of durability is the :class:`CommitRecord`: an atomic batch of
``("write", entry_id, data, expiration_ms)`` / ``("take", entry_id)``
operations appended exactly when they become *committed* state — a bare
``write`` logs one record, a transaction logs a single record with its
whole net effect at commit.  Operations of a transaction that never
commits are never logged, which is what makes recovery roll open
transactions back for free.

Storage sits behind :class:`WalStore` so "the disk" can be whatever
survives the failure being modelled: the in-memory store survives a
``SpaceServer.crash()`` plus the loss of the space object (machine loss
in the simulation), while :class:`FileWalStore` puts the same bytes on a
real filesystem.  A periodic *snapshot* — the serialized committed store
— bounds replay time: installing one truncates every record it already
covers.

Group commit & fsync policy
---------------------------
Every store takes an ``fsync_policy``:

* ``"always"`` (default) — each appended record is persisted *and*
  fsynced before the append returns.  An acknowledged commit survives
  power loss; every commit pays one durability barrier.
* ``"group"`` — records buffer and are persisted+fsynced together when
  the group reaches ``group_size`` records (or when the owning
  :class:`WriteAheadLog`'s ``group_ms`` time watermark fires, or on an
  explicit :meth:`WalStore.sync`).  One barrier amortizes over the whole
  group, multiplying commit throughput — the tradeoff is that commits
  acknowledged after the last barrier can vanish on *power loss* (they
  still survive a process crash, which keeps the OS page cache).
* ``"os"`` — persist to the OS (write+flush) per record, never fsync.
  Fast, survives process crashes, loses the tail since the last explicit
  barrier on power loss.

Snapshot compaction is crash-safe: pending records are synced, the new
snapshot is written to a temp file, fsynced, and atomically renamed into
place *before* the log is truncated (itself via temp-write → fsync →
rename).  A crash at any point leaves either the old snapshot with the
full log or the new snapshot with a (possibly still-full) log — both
recover to the same committed state, since replay skips records at or
below the snapshot LSN.

The log is also the replication feed: a hot standby subscribes and
receives every appended record in commit order (see
:mod:`repro.tuplespace.durable`).  Replication is independent of the
fsync policy — records ship as they commit, not as they hit the disk.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SpaceError

__all__ = ["CommitRecord", "WalStore", "FileWalStore", "WriteAheadLog",
           "record_frame", "decode_log", "WAL_MAGIC",
           "OP_WRITE", "OP_TAKE", "FSYNC_POLICIES", "WAL_CODECS"]

OP_WRITE = "write"
OP_TAKE = "take"

#: Valid values for the ``fsync_policy`` knob, strongest first.
FSYNC_POLICIES = ("always", "group", "os")

#: Frame encodings a store can write.  ``pickle`` frames the whole
#: record through ``pickle.dumps``; ``compact`` uses the length-prefixed
#: binary layout below, which embeds entry payloads as opaque byte
#: ranges — no re-serialization of bytes that already crossed the entry
#: codec.  Reading is always mixed-mode (first-byte dispatch), so a log
#: may interleave frames from both codecs.
WAL_CODECS = ("pickle", "compact")


@dataclass(frozen=True)
class CommitRecord:
    """One atomic batch of committed operations.

    ``ops`` is a tuple of ``(OP_WRITE, entry_id, data, expiration_ms)``
    and ``(OP_TAKE, entry_id)`` tuples; ``expiration_ms`` is *absolute*
    virtual time (``math.inf`` for FOREVER) so replay reconstructs the
    remaining lease instead of restarting it.
    """

    lsn: int
    ops: tuple[tuple, ...]
    #: Primary epoch under which the batch committed.  Monotonically
    #: non-decreasing along the log; a promoted standby bumps it before
    #: serving, which fences the deposed primary (see ``failover.py``).
    #: Defaults to 0 so logs written before fencing existed still load.
    epoch: int = 0


# -------------------------------------------------------------- WAL frames --
#
# Compact frame layout (little-endian)::
#
#     +------+------------+------------------------------------------+
#     | 0xC4 | u32 length | i64 lsn  i64 epoch  u32 nops  op_0..op_n |
#     +------+------------+------------------------------------------+
#
#     op_write:  'W'  i64 entry_id  f64 exp  u32 data_len  data
#                'w'  i64 entry_id  i64 exp  u32 data_len  data
#     op_take:   't'  i64 entry_id
#
# The two write tags keep integer expirations round-tripping as ints
# (replay must not turn them into floats) while the common float case
# — absolute virtual time, ``math.inf`` for FOREVER — packs in one
# struct call.  The entry ``data`` bytes are spliced in verbatim:
# whatever the entry codec produced is what hits the disk, with no
# intermediate pickling of the containing record.  ``length`` covers
# the body only, which is what lets ``decode_log`` treat a short read
# as a torn tail frame.

#: First byte of a compact WAL frame.  Distinct from the entry codec's
#: ``0xC3`` (frames of both kinds can sit in one buffer during replay)
#: and from pickle's PROTO opcode ``0x80``.
WAL_MAGIC = 0xC4

_pack_u32 = struct.Struct("<I").pack
_pack_i64 = struct.Struct("<q").pack
_unpack_u32 = struct.Struct("<I").unpack_from
_unpack_i64 = struct.Struct("<q").unpack_from
_HDR = struct.Struct("<BIqqI")           # magic, body_len, lsn, epoch, nops
_W_FLOAT = struct.Struct("<qdI")         # entry_id, exp, data_len
_W_INT = struct.Struct("<qqI")
_unpack_w_float = _W_FLOAT.unpack_from
_unpack_w_int = _W_INT.unpack_from
#: Whole frame head for the dominant record shape — one float-expiry
#: write op — packed in a single struct call.
_ONE_WRITE = struct.Struct("<BIqqIcqdI")
_ONE_WRITE_BODY = 20 + 21                # qqI header body + 'W' op head

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _encode_compact(record: CommitRecord) -> Optional[bytes]:
    """The compact frame for ``record``, or None if any op does not fit
    the fixed layout (unknown op kind, non-bytes payload, oversized id).
    The caller falls back to a pickle frame in that case, so exotic
    records are never lost — just slower."""
    ops = record.ops
    if len(ops) == 1:
        op = ops[0]
        if op[0] == OP_WRITE and len(op) == 4:
            _, entry_id, data, exp = op
            if (data.__class__ is bytes and exp.__class__ is float
                    and _I64_MIN <= entry_id <= _I64_MAX):
                n = len(data)
                return _ONE_WRITE.pack(
                    WAL_MAGIC, _ONE_WRITE_BODY + n, record.lsn,
                    record.epoch, 1, b"W", entry_id, exp, n) + data
    # The header is packed last (its length field needs the body size),
    # so slot 0 is reserved and back-filled.
    parts: list = [b""]
    append = parts.append
    size = 0
    for op in record.ops:
        kind = op[0]
        if kind == OP_WRITE and len(op) == 4:
            _, entry_id, data, exp = op
            if data.__class__ is not bytes or not (
                    _I64_MIN <= entry_id <= _I64_MAX):
                return None
            if exp.__class__ is float:
                head = b"W" + _W_FLOAT.pack(entry_id, exp, len(data))
            elif exp.__class__ is int and _I64_MIN <= exp <= _I64_MAX:
                head = b"w" + _W_INT.pack(entry_id, exp, len(data))
            else:
                return None
            append(head)
            append(data)
            size += len(head) + len(data)
        elif kind == OP_TAKE and len(op) == 2:
            entry_id = op[1]
            if not (_I64_MIN <= entry_id <= _I64_MAX):
                return None
            append(b"t" + _pack_i64(entry_id))
            size += 9
        else:
            return None
    parts[0] = _HDR.pack(WAL_MAGIC, size + 20, record.lsn, record.epoch,
                         len(record.ops))
    return b"".join(parts)


def record_frame(record: CommitRecord, codec: str = "pickle") -> bytes:
    """The on-disk frame for ``record``, encoded once and cached.

    Group commit concatenates cached frames instead of re-serializing
    the batch; a record replicated between stores with different codecs
    re-encodes (the cache keeps one frame, keyed by its first byte).
    """
    frame = record.__dict__.get("_frame")
    if frame is not None:
        is_compact = frame[0] == WAL_MAGIC
        if is_compact == (codec == "compact"):
            return frame
    if codec == "compact":
        frame = _encode_compact(record)
        if frame is None:
            frame = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        frame = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    # Frozen dataclass: the cache slot is set through the back door and
    # excluded from equality/hash (it never reaches __eq__ — instances
    # compare by declared fields only).
    object.__setattr__(record, "_frame", frame)
    return frame


def _decode_compact_body(view, start: int, end: int) -> Optional[CommitRecord]:
    """Parse one compact frame body; None means a torn/corrupt frame."""
    try:
        pos = start
        lsn, = _unpack_i64(view, pos)
        epoch, = _unpack_i64(view, pos + 8)
        nops, = _unpack_u32(view, pos + 16)
        pos += 20
        ops = []
        for _ in range(nops):
            kind = view[pos]
            pos += 1
            if kind == 0x57 or kind == 0x77:  # W (float exp) / w (int exp)
                if kind == 0x57:
                    entry_id, exp, n = _unpack_w_float(view, pos)
                else:
                    entry_id, exp, n = _unpack_w_int(view, pos)
                pos += 20
                if pos + n > end:
                    return None
                ops.append((OP_WRITE, entry_id, bytes(view[pos:pos + n]), exp))
                pos += n
            elif kind == 0x74:  # t
                entry_id, = _unpack_i64(view, pos)
                pos += 8
                ops.append((OP_TAKE, entry_id))
            else:
                return None
        if pos != end:
            return None
        return CommitRecord(lsn, tuple(ops), epoch)
    except (struct.error, IndexError):
        return None


def decode_log(raw: bytes) -> list[CommitRecord]:
    """Decode a log buffer of mixed pickle/compact frames.

    Stops at the first torn or unrecognizable frame — the same
    torn-tail tolerance the pickle-only loader had (a mid-write crash
    may leave a partial final frame; everything before it is intact
    because frames are appended sequentially).
    """
    records: list[CommitRecord] = []
    view = memoryview(raw)
    pos, size = 0, len(raw)
    while pos < size:
        first = raw[pos]
        if first == WAL_MAGIC:
            if pos + 5 > size:
                break  # torn header
            length, = _unpack_u32(view, pos + 1)
            start = pos + 5
            end = start + length
            if end > size:
                break  # torn body
            record = _decode_compact_body(view, start, end)
            if record is None:
                break
            records.append(record)
            pos = end
        else:
            fh = io.BytesIO(raw)
            fh.seek(pos)
            try:
                record = pickle.load(fh)
            except Exception:
                # EOFError / UnpicklingError / attribute lookups on
                # garbage bytes — all mean a torn tail frame.
                break
            records.append(record)
            pos = fh.tell()
    return records


class WalStore:
    """In-memory durable medium: a snapshot slot plus the record tail.

    The object models the disk — hand the *same store* to a recovering
    space after discarding the crashed one and the committed state comes
    back (that models a process/machine crash, which preserves the OS
    page cache).  :meth:`power_loss` models losing power as well: every
    record past the last durability barrier is discarded, which is
    exactly what the ``group`` and ``os`` policies risk.

    Subclasses persist the same structure elsewhere.
    """

    def __init__(self, fsync_policy: str = "always",
                 group_size: int = 64, codec: str = "pickle") -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise SpaceError(
                f"unknown fsync_policy {fsync_policy!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if group_size < 1:
            raise SpaceError(f"group_size must be >= 1: {group_size}")
        if codec not in WAL_CODECS:
            raise SpaceError(
                f"unknown codec {codec!r}; expected one of {WAL_CODECS}"
            )
        self.fsync_policy = fsync_policy
        self.group_size = group_size
        #: Frame encoding for *new* bytes this store persists.  Reading
        #: is always mixed-mode, so flipping the codec on an existing
        #: log is safe — old frames replay, new frames append.
        self.codec = codec
        self.snapshot: Optional[tuple[int, bytes]] = None  # (lsn, state)
        #: Highest primary epoch this store has durably observed.  It is
        #: replayed on recovery so a restarted primary knows whether it
        #: has been superseded while down.
        self.epoch = 0
        self.records: list[CommitRecord] = []
        #: Records in ``records[:_synced]`` are behind a durability
        #: barrier; the tail is pending (buffered or OS-cached only).
        self._synced = 0
        #: Durability barriers issued (fsyncs, for the file store).
        self.syncs = 0
        #: Cached :meth:`last_lsn` — read on every append (LSN
        #: assignment), so it must not scan.
        self._last_lsn = 0

    # -- appending ----------------------------------------------------------

    def set_epoch(self, epoch: int) -> None:
        """Adopt ``epoch`` if it is newer; epochs never move backwards."""
        if epoch > self.epoch:
            self.epoch = epoch
            self._persist_epoch()

    def _persist_epoch(self) -> None:
        """Make the epoch durable (overridden by :class:`FileWalStore`)."""

    def append(self, record: CommitRecord) -> None:
        if record.epoch > self.epoch:
            self.set_epoch(record.epoch)
        self.records.append(record)
        if record.lsn > self._last_lsn:
            self._last_lsn = record.lsn
        if self.fsync_policy == "group":
            if len(self.records) - self._synced >= self.group_size:
                self.sync()
        else:
            self._persist([record])
            if self.fsync_policy == "always":
                self._synced = len(self.records)
                self._fsync()

    def pending(self) -> int:
        """Records appended but not yet behind a durability barrier."""
        return len(self.records) - self._synced

    def sync(self) -> None:
        """Durability barrier: persist and fsync everything pending."""
        if self.fsync_policy == "group":
            tail = self.records[self._synced:]
            if tail:
                self._persist(tail)
        self._synced = len(self.records)
        self._fsync()

    # -- persistence hooks (overridden by FileWalStore) ----------------------

    def _persist(self, records: list[CommitRecord]) -> None:
        """Hand ``records`` to the medium (OS write; in-memory: no-op)."""

    def _fsync(self) -> None:
        self.syncs += 1

    # -- failure modelling ----------------------------------------------------

    def power_loss(self) -> int:
        """Discard every record not behind a durability barrier.

        Models power loss (as opposed to a process crash, which this
        object survives wholesale).  Returns how many acknowledged
        commits vanished — 0 under ``fsync_policy="always"``.
        """
        lost = len(self.records) - self._synced
        del self.records[self._synced:]
        self._refresh_last_lsn()
        return lost

    def _refresh_last_lsn(self) -> None:
        if self.records:
            self._last_lsn = self.records[-1].lsn
        elif self.snapshot is not None:
            self._last_lsn = self.snapshot[0]
        else:
            self._last_lsn = 0

    # -- snapshotting ---------------------------------------------------------

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        """Persist ``state`` covering everything up to ``lsn`` and drop
        the records it makes redundant.  Acts as a durability barrier:
        the snapshot is durable before the log loses anything."""
        self.sync()
        self.snapshot = (lsn, state)
        self.records = [r for r in self.records if r.lsn > lsn]
        self._synced = len(self.records)
        self._refresh_last_lsn()

    def last_lsn(self) -> int:
        return self._last_lsn


class FileWalStore(WalStore):
    """File-backed store: snapshot and log as pickle-framed files.

    Layout: ``<path>.snap`` holds ``(lsn, state)``; ``<path>.log`` holds
    consecutive pickled :class:`CommitRecord` frames (``pickle.load``
    framing is self-delimiting).  The WAL contract under the default
    ``fsync_policy="always"`` is that an acknowledged commit survives
    power loss — each append is written, flushed *and fsynced*.  See the
    module docstring for what ``group`` and ``os`` trade away.
    """

    def __init__(self, path, fsync_policy: str = "always",
                 group_size: int = 64, codec: str = "pickle") -> None:
        super().__init__(fsync_policy=fsync_policy, group_size=group_size,
                         codec=codec)
        path = os.fspath(path)
        self._snap_path = path + ".snap"
        self._log_path = path + ".log"
        self._epoch_path = path + ".epoch"
        self._load()
        self._log_fh = open(self._log_path, "ab")

    def _persist_epoch(self) -> None:
        # The epoch is a promise never to accept older writes, so it must
        # be durable *before* any commit made under it — atomic replace
        # keeps a crash from leaving a torn value.
        self._write_atomic(
            self._epoch_path,
            lambda fh: fh.write(str(self.epoch).encode("ascii")),
        )

    def _load(self) -> None:
        if os.path.exists(self._epoch_path):
            with open(self._epoch_path, "rb") as fh:
                self.epoch = int(fh.read().decode("ascii") or "0")
        if os.path.exists(self._snap_path):
            with open(self._snap_path, "rb") as fh:
                self.snapshot = pickle.load(fh)
        if os.path.exists(self._log_path):
            with open(self._log_path, "rb") as fh:
                self.records.extend(decode_log(fh.read()))
        if self.snapshot is not None:
            lsn = self.snapshot[0]
            self.records = [r for r in self.records if r.lsn > lsn]
        # Records written before the epoch sidecar existed (or by older
        # versions) may still carry a higher epoch than the sidecar.
        for record in self.records:
            if getattr(record, "epoch", 0) > self.epoch:
                self.epoch = record.epoch
        self._synced = len(self.records)
        self._refresh_last_lsn()

    def _persist(self, records: list[CommitRecord]) -> None:
        # One write per group: frames were (or are now) encoded exactly
        # once each, so a group commit is a concatenation, not a
        # re-serialization of the batch.
        codec = self.codec
        if len(records) == 1:
            payload = record_frame(records[0], codec)
        else:
            payload = b"".join(record_frame(r, codec) for r in records)
        self._log_fh.write(payload)
        self._log_fh.flush()

    def _fsync(self) -> None:
        super()._fsync()
        os.fsync(self._log_fh.fileno())

    @staticmethod
    def _write_atomic(path: str, writer: Callable[[Any], None]) -> None:
        """temp-write → fsync → rename: the file at ``path`` is either
        the old complete version or the new complete version, never a
        torn intermediate."""
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        # Crash-safe compaction order: (1) pending records hit the disk,
        # (2) the new snapshot becomes durable atomically, (3) only then
        # is the log truncated (also atomically).  A crash between any
        # two steps recovers correctly — replay skips records <= lsn.
        self.sync()
        WalStore.install_snapshot(self, lsn, state)  # updates memory view
        self._write_atomic(
            self._snap_path,
            lambda fh: pickle.dump((lsn, state), fh,
                                   protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._log_fh.close()

        def write_tail(fh) -> None:
            for record in self.records:
                fh.write(record_frame(record, self.codec))

        self._write_atomic(self._log_path, write_tail)
        self._log_fh = open(self._log_path, "ab")
        self._synced = len(self.records)

    def close(self) -> None:
        self.sync()
        self._log_fh.close()


class WriteAheadLog:
    """Commit-ordered log with snapshot truncation and live subscribers.

    ``append`` assigns the next LSN; ``import_record`` preserves the LSN
    of a record replicated from a primary, so a promoted standby's log
    lines up with the stream it tailed.  Subscribers (replication
    channels) are invoked synchronously in commit order.

    With a ``runtime`` and ``group_ms``, a *time watermark* backs the
    store's size watermark under ``fsync_policy="group"``: the first
    record to buffer arms a one-shot flush ``group_ms`` later, so a lull
    in traffic can delay durability by at most that long.
    """

    def __init__(self, store: Optional[WalStore] = None,
                 runtime: Any = None,
                 group_ms: Optional[float] = None) -> None:
        self.store = store if store is not None else WalStore()
        self.group_ms = group_ms
        self._runtime = runtime
        self._flush_armed = False
        self._subscribers: list[Callable[[CommitRecord], None]] = []
        #: Optional telemetry tracer; when enabled, each commit/sync drops
        #: an instant marker under the ``"wal"`` trace.  Set by the
        #: framework — the log itself never requires telemetry.
        self.tracer: Any = None

    def bind(self, runtime: Any) -> None:
        """Late-bind the runtime that drives the time watermark."""
        if self._runtime is None:
            self._runtime = runtime

    # -- writing ------------------------------------------------------------

    def append(self, ops: tuple[tuple, ...]) -> CommitRecord:
        store = self.store
        record = CommitRecord(store._last_lsn + 1, tuple(ops), store.epoch)
        store.append(record)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("wal.commit", trace_id="wal", proc="wal",
                           lsn=record.lsn, ops=len(record.ops))
        if self._subscribers:
            self._notify(record)
        if self.group_ms is not None:
            self._arm_flush()
        return record

    def import_record(self, record: CommitRecord) -> None:
        """Adopt a replicated record verbatim (standby tail path)."""
        if record.lsn <= self.store.last_lsn():
            raise SpaceError(
                f"stale replicated record lsn={record.lsn} "
                f"(log is at {self.store.last_lsn()})"
            )
        self.store.append(record)
        self._notify(record)
        self._arm_flush()

    def install_snapshot(self, lsn: int, state: bytes) -> None:
        self.store.install_snapshot(lsn, state)

    def sync(self) -> None:
        """Durability barrier: flush any buffered group to the medium."""
        self.store.sync()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("wal.sync", trace_id="wal", proc="wal",
                           lsn=self.store.last_lsn())

    def _arm_flush(self) -> None:
        if (self._runtime is None or self.group_ms is None
                or self._flush_armed or self.store.pending() == 0):
            return
        self._flush_armed = True
        self._runtime.call_later(self.group_ms, self._flush_due)

    def _flush_due(self) -> None:
        self._flush_armed = False
        if self.store.pending():
            self.store.sync()
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant("wal.sync", trace_id="wal", proc="wal",
                               lsn=self.store.last_lsn(), group_flush=True)

    # -- reading ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self.store.last_lsn()

    # -- epoch fencing ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The primary epoch this log last committed (or adopted) under."""
        return self.store.epoch

    def set_epoch(self, epoch: int) -> None:
        """Adopt a newer epoch (monotonic; older values are ignored)."""
        self.store.set_epoch(epoch)

    def bump_epoch(self) -> int:
        """Durably advance to the next epoch and return it.

        Called by a standby at promotion time, *before* it starts
        serving — every commit it accepts is stamped with the new epoch,
        and the deposed primary's lower epoch can never pass the fence
        again."""
        self.store.set_epoch(self.store.epoch + 1)
        return self.store.epoch

    def records_since(self, lsn: int) -> list[CommitRecord]:
        """Every stored record with an LSN strictly greater than ``lsn``."""
        return [r for r in self.store.records if r.lsn > lsn]

    # -- replication feed ---------------------------------------------------

    def subscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[CommitRecord], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _notify(self, record: CommitRecord) -> None:
        for callback in list(self._subscribers):
            callback(record)


def op_write(entry_id: int, data: bytes, expiration_ms: float) -> tuple:
    return (OP_WRITE, entry_id, data, expiration_ms)


def op_take(entry_id: int) -> tuple:
    return (OP_TAKE, entry_id)


def describe_ops(ops: tuple[tuple, ...]) -> str:
    """Compact human rendering used by logs and tests."""
    parts = []
    for op in ops:
        if op[0] == OP_WRITE:
            parts.append(f"w#{op[1]}")
        else:
            parts.append(f"t#{op[1]}")
    return ",".join(parts)


def state_of(obj: Any) -> bytes:  # pragma: no cover - convenience alias
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
