"""Remote-event notification (JavaSpaces ``notify``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.tuplespace.entry import Entry
from repro.tuplespace.lease import Lease

__all__ = ["RemoteEvent", "EventRegistration"]


@dataclass(frozen=True)
class RemoteEvent:
    """Delivered to a listener when a matching entry becomes visible.

    ``sequence`` increases per registration, letting listeners detect
    missed events, as in Jini's RemoteEvent contract.
    """

    source: str
    registration_id: int
    sequence: int


class EventRegistration:
    """Handle returned by ``notify``: couples the listener and its lease."""

    def __init__(
        self,
        registration_id: int,
        template: Entry,
        listener: Callable[[RemoteEvent], Any],
        lease: Lease,
    ) -> None:
        self.registration_id = registration_id
        self.template = template
        self.listener = listener
        self.lease = lease
        self.sequence = 0

    def next_sequence(self) -> int:
        self.sequence += 1
        return self.sequence

    def active(self) -> bool:
        return not self.lease.is_expired()
