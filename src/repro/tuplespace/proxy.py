"""Remote access to a JavaSpace over the simulated network.

The paper's workers talk to the space through a serializing proxy; here
:class:`SpaceServer` exports a space on a stream address and
:class:`SpaceProxy` is the client stub.  Every operation pays the modelled
network cost, and a connection that drops with open transactions gets them
aborted — the fault-tolerance property the paper attributes to JavaSpaces
transactions (a worker crash mid-task restores the task entry).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    NetworkError,
    SpaceError,
    TransactionAbortedError,
    TransactionError,
)
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime
from repro.tuplespace.entry import Entry
from repro.tuplespace.events import RemoteEvent
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.transaction import Transaction, TransactionManager

__all__ = ["SpaceServer", "SpaceProxy", "RemoteTransaction", "RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Self-healing parameters for a :class:`SpaceProxy`.

    Backoff is capped exponential with multiplicative jitter drawn from a
    simulation RNG stream (never the wall clock), so recovery schedules
    replay exactly under a fixed seed.  ``call_timeout_ms`` bounds how long
    one RPC waits for its reply before the connection is declared dead —
    without it a request lost to a partition would block forever.
    """

    max_retries: int = 8
    base_backoff_ms: float = 50.0
    max_backoff_ms: float = 2_000.0
    jitter: float = 0.5
    call_timeout_ms: Optional[float] = 10_000.0

    def backoff_ms(self, attempt: int, rng: Any = None) -> float:
        delay = min(self.max_backoff_ms,
                    self.base_backoff_ms * (2.0 ** max(0, attempt - 1)))
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


#: Operations safe to re-issue blindly after a reconnect: they either do
#: not mutate the space or (``txn_create``) create fresh state.  A retried
#: ``take``/``write`` could consume or duplicate an entry whose first
#: attempt actually landed, so those surface the disconnect to the caller,
#: whose transaction was aborted server-side anyway.
_IDEMPOTENT_OPS = frozenset({"read", "count", "contents", "ping", "txn_create"})

#: Operations whose ``timeout_ms`` arg is a *server-side wait budget*: the
#: client's reply deadline must cover it on top of the RPC budget, or a
#: long blocking take would be misread as a dead connection.
_BLOCKING_OPS = frozenset({"read", "take", "take_multiple"})

#: Server exceptions reconstructed as their own type on the client, so a
#: caller can distinguish "your transaction expired" from a generic remote
#: failure without string matching.
_REMOTE_ERROR_TYPES: dict[str, type] = {
    "TransactionAbortedError": TransactionAbortedError,
    "TransactionError": TransactionError,
}

#: Sentinel returned by a handler that already sent its own reply and
#: turned the connection into a one-way stream (replication feed).
_STREAMING = object()


class SpaceServer:
    """Exports a :class:`JavaSpace` on a network address."""

    def __init__(
        self,
        runtime: Runtime,
        space: JavaSpace,
        network: Network,
        address: Address,
        txn_manager: Optional[TransactionManager] = None,
    ) -> None:
        self.runtime = runtime
        self.space = space
        self.network = network
        self.address = address
        self.txn_manager = txn_manager if txn_manager is not None else TransactionManager(runtime)
        self._listener = None
        self._running = False
        self._conn_ids = itertools.count(1)
        self._connections: set[StreamSocket] = set()
        self._event_channels: dict[Address, StreamSocket] = {}
        self.restarts = 0

    def start(self) -> None:
        """Start (or, after :meth:`stop`/:meth:`crash`, restart) serving."""
        if self._running:
            return
        if self._listener is not None:
            self.restarts += 1
        self._listener = self.network.listen(self.address)
        self._running = True
        self.runtime.spawn(self._accept_loop, name=f"space-server:{self.address}")

    def stop(self, drain_ms: Optional[float] = 1_000.0) -> None:
        """Graceful stop: refuse new connections and give open ones
        ``drain_ms`` to finish before they are closed.

        The deadline is what makes "graceful" terminate: a client that
        never hangs up used to keep its ``_serve`` loop alive forever.
        ``drain_ms=None`` restores that linger-forever behaviour.
        """
        self._running = False
        if self._listener is not None:
            self._listener.close()
        if drain_ms is not None and self._connections:
            def _drain() -> None:
                if self._running:
                    return  # restarted in the meantime; not ours to close
                for conn in list(self._connections):
                    conn.close()

            self.runtime.call_later(drain_ms, _drain)

    def crash(self) -> None:
        """Abrupt server death: every live connection drops, so clients see
        :class:`ConnectionClosedError` and their open transactions abort —
        in-flight takes roll back exactly as on a real server restart.
        The in-memory space contents survive a restart of the same server
        object; surviving the *machine* requires a
        :class:`~repro.tuplespace.durable.DurableSpace` recovered from its
        write-ahead log."""
        self.stop(drain_ms=None)
        for conn in list(self._connections):
            conn.close()

    # -- server loops -----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running:
            try:
                conn = listener.accept(timeout_ms=None)
            except ConnectionClosedError:
                return
            if conn is None:
                continue
            self._connections.add(conn)
            conn_id = next(self._conn_ids)
            self.runtime.spawn(
                lambda c=conn: self._serve(c), name=f"space-conn-{conn_id}"
            )

    def _serve(self, conn: StreamSocket) -> None:
        """Handle one client connection; abort its transactions on drop."""
        transactions: dict[int, Transaction] = {}
        try:
            while True:
                request = conn.receive(timeout_ms=None)
                if request is None:
                    continue
                try:
                    value = self._dispatch(request, transactions, conn)
                    if value is _STREAMING:
                        continue  # handler replied itself; feed is one-way now
                    conn.send({"ok": True, "value": value})
                except ConnectionClosedError:
                    raise
                except Exception as exc:  # marshalled back to the client
                    conn.send({"ok": False, "error": str(exc), "type": type(exc).__name__})
        except ConnectionClosedError:
            pass
        finally:
            self._connections.discard(conn)
            for txn in transactions.values():
                if txn.state == "active":
                    txn.abort()
            conn.close()

    def _dispatch(
        self,
        request: dict[str, Any],
        transactions: dict[int, Transaction],
        conn: StreamSocket,
    ) -> Any:
        op = request.get("op")
        args = request.get("args", {})
        txn = None
        txn_id = args.get("txn_id")
        if txn_id is not None:
            txn = transactions.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown transaction id {txn_id}")
        handler = _DISPATCH.get(op)
        if handler is None:
            raise SpaceError(f"unknown operation: {op!r}")
        return handler(self, args, txn, transactions, conn)

    # -- per-op handlers, bound through the _DISPATCH table ---------------------

    def _op_write(self, args, txn, transactions, conn) -> Any:
        lease = self.space.write(args["entry"], txn=txn, lease_ms=args["lease_ms"])
        return {"remaining_ms": lease.remaining_ms()}

    def _op_read(self, args, txn, transactions, conn) -> Any:
        return self.space.read(args["template"], txn=txn, timeout_ms=args["timeout_ms"])

    def _op_take(self, args, txn, transactions, conn) -> Any:
        return self.space.take(args["template"], txn=txn, timeout_ms=args["timeout_ms"])

    def _op_count(self, args, txn, transactions, conn) -> Any:
        return self.space.count(args["template"], txn=txn)

    def _op_write_all(self, args, txn, transactions, conn) -> Any:
        leases = self.space.write_all(args["entries"], txn=txn,
                                      lease_ms=args["lease_ms"])
        return {"count": len(leases)}

    def _op_take_multiple(self, args, txn, transactions, conn) -> Any:
        return self.space.take_multiple(
            args["template"], args["max_entries"], txn=txn,
            timeout_ms=args["timeout_ms"],
        )

    def _op_contents(self, args, txn, transactions, conn) -> Any:
        return self.space.contents(args["template"], txn=txn)

    def _op_txn_create(self, args, txn, transactions, conn) -> Any:
        new_txn = self.txn_manager.create(args["timeout_ms"])
        transactions[new_txn.txn_id] = new_txn
        return new_txn.txn_id

    def _op_txn_commit(self, args, txn, transactions, conn) -> Any:
        txn = transactions.pop(args["id"], None)
        if txn is None:
            raise TransactionError(f"unknown transaction id {args['id']}")
        txn.commit()
        return None

    def _op_txn_abort(self, args, txn, transactions, conn) -> Any:
        txn = transactions.pop(args["id"], None)
        if txn is None:
            raise TransactionError(f"unknown transaction id {args['id']}")
        txn.abort()
        return None

    def _op_notify(self, args, txn, transactions, conn) -> Any:
        return self._register_notify(args, conn)

    def _op_ping(self, args, txn, transactions, conn) -> Any:
        return "pong"

    def _op_replicate(self, args, txn, transactions, conn) -> Any:
        """Bootstrap a standby and turn this connection into its feed.

        The reply (snapshot + log tail) is sent and the live subscription
        attached under one space-lock hold, so the cut is consistent: no
        commit can land between the tail we ship and the first streamed
        record, and none is shipped twice.
        """
        space = self.space
        wal = getattr(space, "wal", None)
        if wal is None:
            raise SpaceError("space is not durable; nothing to replicate")
        with space._lock:
            snapshot = wal.store.snapshot
            base_lsn = max(
                snapshot[0] if snapshot is not None else 0,
                args.get("from_lsn", 0),
            )
            conn.send({"ok": True, "value": {
                "snapshot": snapshot,
                "records": wal.records_since(base_lsn),
            }})

            def feed(record: Any, c: StreamSocket = conn) -> None:
                try:
                    c.send({"repl": record})
                except (ConnectionClosedError, NetworkError):
                    wal.unsubscribe(feed)  # standby gone; stop feeding it

            wal.subscribe(feed)
        return _STREAMING

    def _register_notify(self, args: dict[str, Any], conn: StreamSocket) -> int:
        """Forward matching events to the client's event channel."""
        target = Address(args["host"], args["event_port"])
        channel = self._event_channels.get(target)
        if channel is None or channel.closed:
            channel = self.network.connect(self.address.host, target)
            self._event_channels[target] = channel

        def listener(event: RemoteEvent) -> None:
            try:
                channel.send(
                    {"registration_id": event.registration_id, "sequence": event.sequence,
                     "source": event.source}
                )
            except ConnectionClosedError:
                pass

        reg = self.space.notify(args["template"], listener, lease_ms=args["lease_ms"])
        return reg.registration_id


#: op name → unbound SpaceServer handler; a dict probe replaces the former
#: if-chain so dispatch cost no longer depends on the op's position.
_DISPATCH: dict[str, Callable[..., Any]] = {
    "write": SpaceServer._op_write,
    "read": SpaceServer._op_read,
    "take": SpaceServer._op_take,
    "count": SpaceServer._op_count,
    "write_all": SpaceServer._op_write_all,
    "take_multiple": SpaceServer._op_take_multiple,
    "contents": SpaceServer._op_contents,
    "txn_create": SpaceServer._op_txn_create,
    "txn_commit": SpaceServer._op_txn_commit,
    "txn_abort": SpaceServer._op_txn_abort,
    "notify": SpaceServer._op_notify,
    "ping": SpaceServer._op_ping,
    "replicate": SpaceServer._op_replicate,
}


class RemoteTransaction:
    """Client-side handle on a server transaction."""

    def __init__(self, proxy: "SpaceProxy", txn_id: int) -> None:
        self._proxy = proxy
        self.txn_id = txn_id
        self.completed = False

    def commit(self) -> None:
        self._proxy._call("txn_commit", {"id": self.txn_id})
        self.completed = True

    def abort(self) -> None:
        self._proxy._call("txn_abort", {"id": self.txn_id})
        self.completed = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if self.completed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class SpaceProxy:
    """Client stub with the JavaSpace operation set.

    One proxy per client process: requests are serialized on a single
    connection (matching the blocking JavaSpaces client API).

    With a :class:`RecoveryPolicy` the proxy is *self-healing*: a dropped
    or timed-out connection is re-established with capped exponential
    backoff (jitter drawn from ``rng``, virtual time only), idempotent
    operations are transparently re-issued, and non-idempotent ones raise
    :class:`ConnectionClosedError` to let the caller restart its work
    cycle — its server-side transaction was already aborted by the drop.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        server_address: Address,
        recovery: Optional[RecoveryPolicy] = None,
        rng: Any = None,
        metrics: Any = None,
        locator: Optional[Callable[[], Optional[Address]]] = None,
    ) -> None:
        self.network = network
        self.host = host
        self.server_address = server_address
        self.recovery = recovery
        self._rng = rng
        self._metrics = metrics
        #: Optional service locator (e.g. a Jini lookup query) consulted on
        #: every reconnect: after a failover the proxy re-discovers the
        #: promoted standby instead of hammering the dead primary address.
        self._locator = locator
        self._conn: Optional[StreamSocket] = None
        self._event_listener = None
        self._event_handlers: dict[int, Callable[[RemoteEvent], Any]] = {}
        self._failed = False
        self._connects = 0
        self._dial_failures = 0
        self.reconnects = 0
        self.retries = 0

    # -- plumbing ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate host death: every subsequent call raises, and the open
        connection drops so the server aborts this client's transactions
        (fault-injection hook used by crash experiments)."""
        self._failed = True
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> StreamSocket:
        if self._failed:
            raise ConnectionClosedError("proxy host crashed")
        if self._conn is None or self._conn.closed:
            # Re-discover on any *re*connect — including a first connect
            # that keeps failing: a proxy born after a failover (restarted
            # master) must not hammer the dead configured address forever.
            if self._locator is not None and \
                    (self._connects > 0 or self._dial_failures > 0):
                self._rediscover()
            try:
                self._conn = self.network.connect(self.host, self.server_address)
            except (ConnectionRefusedError_, NetworkError):
                self._dial_failures += 1
                raise
            self._connects += 1
            if self._connects > 1:
                self.reconnects += 1
                if self._metrics is not None:
                    self._metrics.event("proxy-reconnected", host=self.host)
        return self._conn

    def _rediscover(self) -> None:
        """Ask the locator where the space lives now (reconnect path).

        A locator failure (registrar briefly down) falls back to the last
        known address — the normal backoff loop covers that window.
        """
        try:
            fresh = self._locator()
        except (ConnectionClosedError, ConnectionRefusedError_, SpaceError):
            return
        except Exception:
            return  # lookup substrate errors: keep the cached address
        if fresh is not None and fresh != self.server_address:
            self.server_address = fresh
            if self._metrics is not None:
                self._metrics.event("proxy-rediscovered", host=self.host,
                                    address=str(fresh))

    def _drop_connection(self) -> None:
        """Discard the current connection so a late reply from a dead RPC
        can never be mistaken for the next call's answer."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _call_once(self, op: str, args: dict[str, Any]) -> Any:
        conn = self._connection()
        conn.send({"op": op, "args": args})
        timeout_ms = self.recovery.call_timeout_ms if self.recovery else None
        if timeout_ms is not None and op in _BLOCKING_OPS:
            # The RPC budget covers transport + dispatch; the op's own wait
            # budget is spent server-side on purpose and must be added, not
            # mistaken for a dead connection.
            wait = args.get("timeout_ms")
            timeout_ms = None if wait is None else timeout_ms + wait
        reply = conn.receive(timeout_ms=timeout_ms)
        if reply is None:
            self._drop_connection()
            raise ConnectionClosedError(f"space rpc {op!r} timed out")
        if reply.get("ok"):
            return reply.get("value")
        exc_cls = _REMOTE_ERROR_TYPES.get(reply.get("type"))
        if exc_cls is not None:
            raise exc_cls(f"remote {op} failed: {reply.get('error')}")
        raise SpaceError(f"remote {op} failed: {reply.get('type')}: {reply.get('error')}")

    def _call(self, op: str, args: dict[str, Any]) -> Any:
        retriable = self.recovery is not None and op in _IDEMPOTENT_OPS
        attempt = 0
        while True:
            try:
                return self._call_once(op, args)
            except (ConnectionClosedError, ConnectionRefusedError_):
                self._drop_connection()
                if self._failed or not retriable:
                    raise
                attempt += 1
                if attempt > self.recovery.max_retries:
                    raise
                self.retries += 1
                if self._metrics is not None:
                    self._metrics.event("proxy-retry", host=self.host, op=op,
                                        attempt=attempt)
                self.network.runtime.sleep(
                    self.recovery.backoff_ms(attempt, self._rng)
                )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._event_listener is not None:
            self._event_listener.close()
            self._event_listener = None

    # -- JavaSpace API ----------------------------------------------------------------

    def write(self, entry: Entry, txn: Optional[RemoteTransaction] = None,
              lease_ms: float = FOREVER) -> dict[str, Any]:
        return self._call(
            "write",
            {"entry": entry, "lease_ms": lease_ms, "txn_id": txn.txn_id if txn else None},
        )

    def read(self, template: Entry, txn: Optional[RemoteTransaction] = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        return self._call(
            "read",
            {"template": template, "timeout_ms": timeout_ms,
             "txn_id": txn.txn_id if txn else None},
        )

    def take(self, template: Entry, txn: Optional[RemoteTransaction] = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        return self._call(
            "take",
            {"template": template, "timeout_ms": timeout_ms,
             "txn_id": txn.txn_id if txn else None},
        )

    def read_if_exists(self, template: Entry, txn: Optional[RemoteTransaction] = None):
        return self.read(template, txn, timeout_ms=0.0)

    def take_if_exists(self, template: Entry, txn: Optional[RemoteTransaction] = None):
        return self.take(template, txn, timeout_ms=0.0)

    def count(self, template: Entry) -> int:
        return self._call("count", {"template": template, "txn_id": None})

    def write_all(self, entries: list[Entry],
                  txn: Optional[RemoteTransaction] = None,
                  lease_ms: float = FOREVER) -> int:
        reply = self._call(
            "write_all",
            {"entries": entries, "lease_ms": lease_ms,
             "txn_id": txn.txn_id if txn else None},
        )
        return reply["count"]

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Optional[RemoteTransaction] = None,
                      timeout_ms: Optional[float] = None) -> list[Entry]:
        return self._call(
            "take_multiple",
            {"template": template, "max_entries": max_entries,
             "timeout_ms": timeout_ms, "txn_id": txn.txn_id if txn else None},
        )

    def contents(self, template: Entry,
                 txn: Optional[RemoteTransaction] = None) -> list[Entry]:
        return self._call(
            "contents",
            {"template": template, "txn_id": txn.txn_id if txn else None},
        )

    def transaction(self, timeout_ms: float = FOREVER) -> RemoteTransaction:
        txn_id = self._call("txn_create", {"timeout_ms": timeout_ms})
        return RemoteTransaction(self, txn_id)

    def ping(self) -> bool:
        return self._call("ping", {}) == "pong"

    # -- notify ---------------------------------------------------------------------

    def notify(
        self,
        template: Entry,
        listener: Callable[[RemoteEvent], Any],
        lease_ms: float = FOREVER,
        runtime: Optional[Runtime] = None,
    ) -> int:
        """Register for remote events; spawns a local event-pump process."""
        if runtime is None:
            raise SpaceError("notify over a proxy needs the runtime to pump events")
        if self._event_listener is None:
            event_address = self.network.ephemeral(self.host)
            self._event_listener = self.network.listen(event_address)
            self._event_port = event_address.port
            runtime.spawn(self._event_pump, name=f"space-events:{self.host}")
        reg_id = self._call(
            "notify",
            {"template": template, "lease_ms": lease_ms,
             "host": self.host, "event_port": self._event_port},
        )
        self._event_handlers[reg_id] = listener
        return reg_id

    def _event_pump(self) -> None:
        try:
            channel = self._event_listener.accept(timeout_ms=None)
            if channel is None:
                return
            while True:
                message = channel.receive(timeout_ms=None)
                if message is None:
                    continue
                handler = self._event_handlers.get(message["registration_id"])
                if handler is not None:
                    handler(
                        RemoteEvent(
                            message["source"], message["registration_id"], message["sequence"]
                        )
                    )
        except ConnectionClosedError:
            return
