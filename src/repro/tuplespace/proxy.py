"""Remote access to a JavaSpace over the simulated network.

The paper's workers talk to the space through a serializing proxy; here
:class:`SpaceServer` exports a space on a stream address and
:class:`SpaceProxy` is the client stub.  Every operation pays the modelled
network cost, and a connection that drops with open transactions gets them
aborted — the fault-tolerance property the paper attributes to JavaSpaces
transactions (a worker crash mid-task restores the task entry).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import (
    AdmissionError,
    ConnectionClosedError,
    ConnectionRefusedError_,
    FencedError,
    NetworkError,
    SpaceError,
    TransactionAbortedError,
    TransactionError,
)
from repro.net.address import Address
from repro.net.network import Network, StreamSocket
from repro.runtime.base import Runtime
from repro.tuplespace.entry import Entry
from repro.tuplespace.events import RemoteEvent
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.space import CODECS, JavaSpace
from repro.tuplespace.transaction import Transaction, TransactionManager
from repro.util.codec import decode_any, encode_entry

__all__ = ["SpaceServer", "SpaceProxy", "ProxyBatch", "RemoteTransaction",
           "RecoveryPolicy", "AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Self-healing parameters for a :class:`SpaceProxy`.

    Backoff is capped exponential with multiplicative jitter drawn from a
    simulation RNG stream (never the wall clock), so recovery schedules
    replay exactly under a fixed seed.  ``call_timeout_ms`` bounds how long
    one RPC waits for its reply before the connection is declared dead —
    without it a request lost to a partition would block forever.
    """

    max_retries: int = 8
    base_backoff_ms: float = 50.0
    max_backoff_ms: float = 2_000.0
    jitter: float = 0.5
    call_timeout_ms: Optional[float] = 10_000.0

    def backoff_ms(self, attempt: int, rng: Any = None) -> float:
        delay = min(self.max_backoff_ms,
                    self.base_backoff_ms * (2.0 ** max(0, attempt - 1)))
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-tenant admission policy enforced by a :class:`SpaceServer`.

    All limits apply to *tenant-tagged* task writes only (an entry whose
    class is in ``class_names`` and whose ``tenant`` field is set), so
    single-tenant deployments — and every other entry class: results,
    checkpoints, dead letters — are never throttled.  Rates are metered
    on the simulation clock, so admission decisions replay exactly.
    """

    #: Per-tenant cap on queued (unclaimed) tasks in the space.
    max_in_flight: Optional[int] = None
    #: Per-tenant token-bucket refill rate, task writes per second.
    write_rate_per_s: Optional[float] = None
    #: Token-bucket capacity (burst size), in task writes.
    write_burst: float = 16.0
    #: Total task backlog at which the server starts shedding: writes
    #: with ``priority < shed_below_priority`` are rejected.
    queue_soft_watermark: Optional[int] = None
    #: Total task backlog at which *every* tenant-tagged task write is
    #: rejected regardless of priority.
    queue_hard_watermark: Optional[int] = None
    #: Priority cutoff for soft-watermark shedding (entries without a
    #: priority count as 0 — the lowest, shed first).
    shed_below_priority: int = 1
    #: Retry-after hint for quota/watermark rejections (token-bucket
    #: rejections compute the exact refill time instead).
    retry_after_ms: float = 100.0
    #: Per-tenant overrides of ``max_in_flight`` / ``write_rate_per_s``.
    quotas: Optional[dict[str, int]] = None
    rates: Optional[dict[str, float]] = None
    #: Entry classes under admission control.
    class_names: tuple[str, ...] = ("TaskEntry",)


class AdmissionController:
    """Enforces an :class:`AdmissionConfig` ahead of dispatch.

    :meth:`check` runs like ``_check_fence`` — *before* the operation's
    handler — so a rejected write provably has no side effects and the
    client may retry it blindly after the ``retry_after_ms`` hint.  Only
    reads of space state (``count``) happen here.
    """

    def __init__(self, runtime: Runtime, space: JavaSpace,
                 config: AdmissionConfig) -> None:
        self.runtime = runtime
        self.space = space
        self.config = config
        #: tenant → (tokens, last_refill_ms) for the write-rate bucket.
        self._buckets: dict[str, tuple[float, float]] = {}
        self.stats = {"checked": 0, "admitted": 0, "rejected": 0, "shed": 0}
        #: tenant → {"admitted": n, "rejected": n, "shed": n}.
        self.tenant_stats: dict[str, dict[str, int]] = {}
        self._templates: dict[type, Entry] = {}

    # -- templates for backlog counting ----------------------------------------

    def _class_template(self, cls: type) -> Entry:
        """A field-less template matching every entry of ``cls``."""
        template = self._templates.get(cls)
        if template is None:
            template = cls.__new__(cls)
            self._templates[cls] = template
        return template

    @staticmethod
    def _tenant_template(cls: type, tenant: str) -> Entry:
        template = cls.__new__(cls)
        template.tenant = tenant
        return template

    def _tenant_counts(self, tenant: str) -> dict[str, int]:
        counts = self.tenant_stats.get(tenant)
        if counts is None:
            counts = self.tenant_stats[tenant] = {
                "admitted": 0, "rejected": 0, "shed": 0}
        return counts

    def _quota_for(self, tenant: str) -> Optional[int]:
        quotas = self.config.quotas
        if quotas is not None and tenant in quotas:
            return quotas[tenant]
        return self.config.max_in_flight

    def _rate_for(self, tenant: str) -> Optional[float]:
        rates = self.config.rates
        if rates is not None and tenant in rates:
            return rates[tenant]
        return self.config.write_rate_per_s

    # -- the admission decision -------------------------------------------------

    def check(self, op: str, args: dict[str, Any]) -> None:
        """Raise :class:`~repro.errors.AdmissionError` to refuse ``op``.

        Applies to ``write``/``write_all`` of controlled, tenant-tagged
        entries; everything else passes untouched.  A ``requeue``-flagged
        request (a worker re-queuing tasks it already holds: preemption
        release, poison-task retry) bypasses quotas — those tasks were
        admitted once, and shedding them would break exactly-once.
        The whole operation is judged before any of it executes, so a
        mixed ``write_all`` is all-or-nothing.
        """
        # Pre-encoded writes (codec="compact" proxies) ship frames, not
        # instances; admission decodes them — the controlled-class check
        # needs the tenant field, and compact decode is cheap.
        if op == "write":
            data = args.get("entry_data")
            entries = ([decode_any(data)] if data is not None
                       else [args["entry"]])
        elif op == "write_all":
            datas = args.get("entries_data")
            entries = ([decode_any(d) for d in datas] if datas is not None
                       else args["entries"])
        else:
            return
        if args.get("requeue"):
            return
        config = self.config
        controlled: dict[str, list[Entry]] = {}
        for entry in entries:
            if type(entry).__name__ not in config.class_names:
                continue
            tenant = getattr(entry, "tenant", None)
            if tenant is None:
                continue
            controlled.setdefault(tenant, []).append(entry)
        if not controlled:
            return
        self.stats["checked"] += 1
        now = self.runtime.now()
        # Watermark shedding first: overload protection outranks per-
        # tenant bookkeeping, and a shed write must not drain the bucket.
        self._check_watermarks(controlled)
        for tenant, batch in sorted(controlled.items()):
            self._check_quota(tenant, batch)
        for tenant, batch in sorted(controlled.items()):
            self._check_rate(tenant, batch, now)
        self.stats["admitted"] += 1
        for tenant, batch in controlled.items():
            self._tenant_counts(tenant)["admitted"] += len(batch)

    def _reject(self, tenant: Optional[str], reason: str, message: str,
                retry_after_ms: float) -> None:
        self.stats["rejected"] += 1
        if reason == "shed":
            self.stats["shed"] += 1
        if tenant is not None:
            counts = self._tenant_counts(tenant)
            counts["rejected"] += 1
            if reason == "shed":
                counts["shed"] += 1
        raise AdmissionError(message, retry_after_ms=retry_after_ms,
                             tenant=tenant, reason=reason)

    def _check_watermarks(self, controlled: dict[str, list[Entry]]) -> None:
        config = self.config
        if config.queue_soft_watermark is None and \
                config.queue_hard_watermark is None:
            return
        backlog = sum(
            self.space.count(self._class_template(cls))
            for cls in {type(e) for batch in controlled.values()
                        for e in batch}
        )
        hard = config.queue_hard_watermark
        if hard is not None and backlog >= hard:
            tenant = sorted(controlled)[0] if len(controlled) == 1 else None
            self._reject(
                tenant, "shed",
                f"queue depth {backlog} >= hard watermark {hard}; "
                f"shedding all task admissions",
                config.retry_after_ms)
        soft = config.queue_soft_watermark
        if soft is None or backlog < soft:
            return
        cutoff = config.shed_below_priority
        for tenant, batch in sorted(controlled.items()):
            for entry in batch:
                priority = getattr(entry, "priority", None) or 0
                if priority < cutoff:
                    self._reject(
                        tenant, "shed",
                        f"queue depth {backlog} >= soft watermark {soft}; "
                        f"shedding priority {priority} < {cutoff} "
                        f"for tenant {tenant!r}",
                        config.retry_after_ms)

    def _check_quota(self, tenant: str, batch: list[Entry]) -> None:
        quota = self._quota_for(tenant)
        if quota is None:
            return
        in_flight = sum(
            self.space.count(self._tenant_template(cls, tenant))
            for cls in {type(e) for e in batch}
        )
        if in_flight + len(batch) > quota:
            self._reject(
                tenant, "in-flight",
                f"tenant {tenant!r} has {in_flight} tasks in flight; "
                f"+{len(batch)} would exceed quota {quota}",
                self.config.retry_after_ms)

    def _check_rate(self, tenant: str, batch: list[Entry],
                    now: float) -> None:
        rate = self._rate_for(tenant)
        if rate is None:
            return
        burst = max(self.config.write_burst, 1.0)
        tokens, last = self._buckets.get(tenant, (burst, now))
        tokens = min(burst, tokens + rate * (now - last) / 1000.0)
        cost = float(len(batch))
        if tokens < cost:
            # Hint exactly when the bucket will have refilled.
            retry_after = (cost - tokens) / rate * 1000.0
            self._buckets[tenant] = (tokens, now)
            self._reject(
                tenant, "rate",
                f"tenant {tenant!r} exceeds write rate {rate}/s "
                f"(need {cost:.0f} tokens, have {tokens:.2f})",
                retry_after)
        self._buckets[tenant] = (tokens - cost, now)


#: Operations safe to re-issue blindly after a reconnect: they either do
#: not mutate the space or (``txn_create``) create fresh state.  A retried
#: ``take``/``write`` could consume or duplicate an entry whose first
#: attempt actually landed, so those surface the disconnect to the caller,
#: whose transaction was aborted server-side anyway.
_IDEMPOTENT_OPS = frozenset({"read", "exists", "count", "contents", "ping",
                             "txn_create"})

#: Operations whose ``timeout_ms`` arg is a *server-side wait budget*: the
#: client's reply deadline must cover it on top of the RPC budget, or a
#: long blocking take would be misread as a dead connection.
_BLOCKING_OPS = frozenset({"read", "exists", "take", "take_multiple"})

#: Server exceptions reconstructed as their own type on the client, so a
#: caller can distinguish "your transaction expired" from a generic remote
#: failure without string matching.
_REMOTE_ERROR_TYPES: dict[str, type] = {
    "TransactionAbortedError": TransactionAbortedError,
    "TransactionError": TransactionError,
    "FencedError": FencedError,
    "AdmissionError": AdmissionError,
}


def _error_reply(exc: Exception) -> dict[str, Any]:
    """Marshal a handler exception into a reply dict.

    :class:`AdmissionError` carries structured fields (the retry-after
    hint, tenant, reason) that the client-side reconstruction needs —
    a string round trip would lose them.
    """
    reply: dict[str, Any] = {"ok": False, "error": str(exc),
                             "type": type(exc).__name__}
    if isinstance(exc, AdmissionError):
        reply["retry_after_ms"] = exc.retry_after_ms
        reply["tenant"] = exc.tenant
        reply["reason"] = exc.reason
    return reply


def _raise_remote(reply: dict[str, Any], label: str) -> None:
    """Re-raise a marshalled server error as its client-side type."""
    exc_cls = _REMOTE_ERROR_TYPES.get(reply.get("type"))
    message = f"remote {label} failed: {reply.get('error')}"
    if exc_cls is AdmissionError:
        raise AdmissionError(
            message,
            retry_after_ms=reply.get("retry_after_ms", 0.0),
            tenant=reply.get("tenant"),
            reason=reply.get("reason", "quota"),
        )
    if exc_cls is not None:
        raise exc_cls(message)
    raise SpaceError(
        f"remote {label} failed: {reply.get('type')}: {reply.get('error')}")

#: Operations exempt from epoch/lease fencing: probes must reach a fenced
#: server (that is how supervisors and demoted standbys talk to it), the
#: replication feed is how a fenced server *re-syncs*, and ``fence`` is
#: the demotion order itself.
_FENCE_EXEMPT_OPS = frozenset({"ping", "replicate", "fence"})

#: Sentinel returned by a handler that already sent its own reply and
#: turned the connection into a one-way stream (replication feed).
_STREAMING = object()

#: Operations that cannot ride inside a ``batch`` request: they hijack the
#: connection (``replicate``), need their own side channel (``notify``),
#: or would nest (``batch``).
_NON_BATCHABLE = frozenset({"replicate", "notify", "batch"})


class SpaceServer:
    """Exports a :class:`JavaSpace` on a network address."""

    def __init__(
        self,
        runtime: Runtime,
        space: JavaSpace,
        network: Network,
        address: Address,
        txn_manager: Optional[TransactionManager] = None,
    ) -> None:
        self.runtime = runtime
        self.space = space
        self.network = network
        self.address = address
        self.txn_manager = txn_manager if txn_manager is not None else TransactionManager(runtime)
        self._listener = None
        self._running = False
        self._conn_ids = itertools.count(1)
        self._connections: set[StreamSocket] = set()
        self._event_channels: dict[Address, StreamSocket] = {}
        self.restarts = 0
        #: Epoch fencing (off by default; failover-managed servers enable
        #: it).  When on, a request whose stamped epoch is *behind* this
        #: server's WAL epoch is rejected with :class:`FencedError`, and a
        #: request from a *newer* epoch proves this server was superseded:
        #: it demotes itself on the spot.
        self.fencing = False
        #: Set once the server learns a higher epoch exists; every
        #: non-exempt op is refused from then on.
        self.superseded = False
        #: Requests rejected by the fence (stale client or deposed self).
        self.fenced_rpcs = 0
        #: Primary lease: when set, the server self-fences ``lease_ms``
        #: after the last supervisor renewal — a paused or partitioned
        #: primary stops acknowledging writes *before* its standby can be
        #: promoted, closing the split-brain window that heartbeat-driven
        #: failover otherwise leaves open.
        self.lease_ms: Optional[float] = None
        self._lease_expires: Optional[float] = None
        #: Synchronous replication: when on and a standby feed is attached,
        #: a mutation is acknowledged only after the standby has confirmed
        #: the WAL record.  This closes the *lost-ack* half of split brain:
        #: without it an egress-partitioned primary keeps acking loopback
        #: clients while nothing reaches the standby that is about to be
        #: promoted.  Enabled together with fencing by failover-managed
        #: deployments; standalone servers keep the async fast path.
        self.sync_replication = False
        #: How long a mutation may wait for the standby's ack before the
        #: server gives up and *drops the client connection unanswered*
        #: (the client sees a connection error: correctly indeterminate).
        self.repl_ack_timeout_ms = 500.0
        #: Replication LSN each attached feed has confirmed, keyed by the
        #: feed's connection; mutations gate on the minimum.
        self._feed_acks: dict[Any, int] = {}
        self._repl_cond = runtime.condition()
        #: Acks that timed out waiting for the standby (dropped replies).
        self.repl_stalls = 0
        #: Multi-tenant admission control (off by default).  When set,
        #: tenant-tagged task writes are checked *before* dispatch — like
        #: the fence — so a rejected write has no side effects.
        self.admission: Optional[AdmissionController] = None

    def enable_admission(self, config: AdmissionConfig) -> AdmissionController:
        """Arm per-tenant admission control for this server's space."""
        self.admission = AdmissionController(self.runtime, self.space, config)
        return self.admission

    @property
    def epoch(self) -> int:
        """The epoch of the space served (0 for non-durable spaces)."""
        wal = getattr(self.space, "wal", None)
        return wal.epoch if wal is not None else 0

    def grant_lease(self, lease_ms: float) -> None:
        """Arm the primary lease (renewed by supervisor probe pings)."""
        self.lease_ms = lease_ms
        self._lease_expires = self.runtime.now() + lease_ms

    def start(self) -> None:
        """Start (or, after :meth:`stop`/:meth:`crash`, restart) serving."""
        if self._running:
            return
        if self._listener is not None:
            self.restarts += 1
        if self.lease_ms is not None:
            self._lease_expires = self.runtime.now() + self.lease_ms
        self._listener = self.network.listen(self.address)
        self._running = True
        self.runtime.spawn(self._accept_loop, name=f"space-server:{self.address}")

    def stop(self, drain_ms: Optional[float] = 1_000.0) -> None:
        """Graceful stop: refuse new connections and give open ones
        ``drain_ms`` to finish before they are closed.

        The deadline is what makes "graceful" terminate: a client that
        never hangs up used to keep its ``_serve`` loop alive forever.
        ``drain_ms=None`` restores that linger-forever behaviour.
        """
        self._running = False
        if self._listener is not None:
            self._listener.close()
        # Graceful stop is a durability barrier: a buffered commit group
        # must not be lost to a *clean* shutdown (crash() skips this on
        # purpose — that is the failure being modelled).
        space_sync = getattr(self.space, "sync", None)
        if space_sync is not None:
            space_sync()
        if drain_ms is not None and self._connections:
            def _drain() -> None:
                if self._running:
                    return  # restarted in the meantime; not ours to close
                for conn in list(self._connections):
                    conn.close()

            self.runtime.call_later(drain_ms, _drain)

    def crash(self) -> None:
        """Abrupt server death: every live connection drops, so clients see
        :class:`ConnectionClosedError` and their open transactions abort —
        in-flight takes roll back exactly as on a real server restart.
        The in-memory space contents survive a restart of the same server
        object; surviving the *machine* requires a
        :class:`~repro.tuplespace.durable.DurableSpace` recovered from its
        write-ahead log."""
        self.stop(drain_ms=None)
        for conn in list(self._connections):
            conn.close()

    # -- server loops -----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running:
            try:
                conn = listener.accept(timeout_ms=None)
            except ConnectionClosedError:
                return
            if conn is None:
                continue
            self._connections.add(conn)
            conn_id = next(self._conn_ids)
            self.runtime.spawn(
                lambda c=conn: self._serve(c), name=f"space-conn-{conn_id}"
            )

    def _serve(self, conn: StreamSocket) -> None:
        """Handle one client connection; abort its transactions on drop."""
        transactions: dict[int, Transaction] = {}
        wal = getattr(self.space, "wal", None)
        try:
            while True:
                request = conn.receive(timeout_ms=None)
                if request is None:
                    continue
                if "repl_ack" in request:
                    # Standby confirming replication up to an LSN.  Acks
                    # ride the feed connection *backwards* (standby to
                    # primary), which is exactly the direction an egress
                    # partition of the primary leaves open — so a cut-off
                    # primary notices its acks stopped instead of serving
                    # on in blissful ignorance.
                    self._note_repl_ack(conn, int(request["repl_ack"]))
                    continue
                try:
                    before_lsn = wal.last_lsn if wal is not None else 0
                    value = self._dispatch(request, transactions, conn)
                    if value is _STREAMING:
                        continue  # handler replied itself; feed is one-way now
                    if (self.sync_replication and wal is not None
                            and wal.last_lsn > before_lsn
                            and not self._await_repl_ack(wal.last_lsn)):
                        # The standby never confirmed this mutation within
                        # the timeout.  Acking anyway would be the lost-ack
                        # bug: a promotion could discard a commit the
                        # client was told succeeded.  Dropping the
                        # connection *without a reply* instead makes the
                        # outcome honestly indeterminate on the client.
                        self.repl_stalls += 1
                        conn.close()
                        raise ConnectionClosedError(
                            f"replication ack for lsn {wal.last_lsn} "
                            f"timed out; dropping client unanswered")
                    conn.send({"ok": True, "value": value})
                except ConnectionClosedError:
                    raise
                except Exception as exc:  # marshalled back to the client
                    conn.send(_error_reply(exc))
        except ConnectionClosedError:
            pass
        finally:
            self._connections.discard(conn)
            if conn in self._feed_acks:
                with self._repl_cond:
                    self._feed_acks.pop(conn, None)
                    self._repl_cond.notify_all()
            for txn in transactions.values():
                if txn.state == "active":
                    txn.abort()
            conn.close()

    # -- replication acknowledgements -------------------------------------------

    def _note_repl_ack(self, conn: StreamSocket, lsn: int) -> None:
        with self._repl_cond:
            if lsn > self._feed_acks.get(conn, -1):
                self._feed_acks[conn] = lsn
            self._repl_cond.notify_all()

    def _await_repl_ack(self, lsn: int) -> bool:
        """Block until every attached feed has confirmed ``lsn``.

        True when confirmed (or no feed is attached — with no standby to
        promote there is nothing a lost ack could diverge from, and
        gating would deadlock a freshly promoted primary whose deposed
        predecessor has not rejoined yet); False on timeout.
        """
        with self._repl_cond:
            return self.runtime.wait_for(
                self._repl_cond,
                lambda: (not self._feed_acks
                         or min(self._feed_acks.values()) >= lsn),
                timeout_ms=self.repl_ack_timeout_ms,
            )

    def _dispatch(
        self,
        request: dict[str, Any],
        transactions: dict[int, Transaction],
        conn: StreamSocket,
    ) -> Any:
        op = request.get("op")
        args = request.get("args", {})
        if self.fencing and op not in _FENCE_EXEMPT_OPS:
            self._check_fence(op, request.get("epoch"))
        if self.admission is not None:
            self.admission.check(op, args)
        txn = None
        txn_id = args.get("txn_id")
        if txn_id is not None:
            txn = transactions.get(txn_id)
            if txn is None:
                raise TransactionError(f"unknown transaction id {txn_id}")
        handler = _DISPATCH.get(op)
        if handler is None:
            raise SpaceError(f"unknown operation: {op!r}")
        return handler(self, args, txn, transactions, conn)

    def _check_fence(self, op: str, client_epoch: Optional[int]) -> None:
        """Reject the request if either side of it is behind the cluster.

        The check runs *before* the handler, so a fenced request has no
        side effects — which is what makes the client's retry after
        re-discovery safe even for writes and takes.
        """
        if self.superseded:
            self.fenced_rpcs += 1
            raise FencedError(
                f"server at {self.address} was superseded "
                f"(epoch {self.epoch}); rediscover the primary")
        my_epoch = self.epoch
        if client_epoch is not None:
            if client_epoch < my_epoch:
                self.fenced_rpcs += 1
                raise FencedError(
                    f"stale client epoch {client_epoch} < {my_epoch}")
            if client_epoch > my_epoch:
                # A client that has already seen a newer primary is proof
                # this server was deposed while it wasn't looking.
                self.superseded = True
                self.fenced_rpcs += 1
                raise FencedError(
                    f"server epoch {my_epoch} superseded by client "
                    f"epoch {client_epoch}")
        if (self._lease_expires is not None
                and self.runtime.now() > self._lease_expires):
            # No supervisor renewal for a full lease: this server cannot
            # know whether a standby has been promoted, so it must refuse
            # acknowledgements until a renewal (or a fence) arrives.
            self.fenced_rpcs += 1
            raise FencedError(
                f"primary lease expired at {self._lease_expires:.0f} ms; "
                f"refusing {op!r} until the supervisor renews")

    # -- per-op handlers, bound through the _DISPATCH table ---------------------

    def _op_write(self, args, txn, transactions, conn) -> Any:
        data = args.get("entry_data")
        if data is not None:
            # Zero-copy path: the client already encoded the entry; the
            # space stores those bytes verbatim.
            lease = self.space.write_encoded(data, txn=txn,
                                             lease_ms=args["lease_ms"])
        else:
            lease = self.space.write(args["entry"], txn=txn,
                                     lease_ms=args["lease_ms"])
        return {"remaining_ms": lease.remaining_ms()}

    def _op_read(self, args, txn, transactions, conn) -> Any:
        if args.get("raw"):
            return self.space.read_encoded(args["template"], txn=txn,
                                           timeout_ms=args["timeout_ms"])
        return self.space.read(args["template"], txn=txn, timeout_ms=args["timeout_ms"])

    def _op_take(self, args, txn, transactions, conn) -> Any:
        if args.get("raw"):
            # The stored frame ships as-is; the client decodes once.
            return self.space.take_encoded(args["template"], txn=txn,
                                           timeout_ms=args["timeout_ms"])
        return self.space.take(args["template"], txn=txn, timeout_ms=args["timeout_ms"])

    def _op_count(self, args, txn, transactions, conn) -> Any:
        return self.space.count(args["template"], txn=txn)

    def _op_exists(self, args, txn, transactions, conn) -> Any:
        # A blocking read whose reply is one bit: scatter-gather clients
        # camp on shards with this, so waiting for a fat entry to appear
        # somewhere does not drag the entry itself over the wire.
        return self.space.read(args["template"], txn=txn,
                               timeout_ms=args["timeout_ms"]) is not None

    def _op_write_all(self, args, txn, transactions, conn) -> Any:
        datas = args.get("entries_data")
        if datas is not None:
            leases = self.space.write_all_encoded(datas, txn=txn,
                                                  lease_ms=args["lease_ms"])
        else:
            leases = self.space.write_all(args["entries"], txn=txn,
                                          lease_ms=args["lease_ms"])
        return {"count": len(leases)}

    def _op_take_multiple(self, args, txn, transactions, conn) -> Any:
        if args.get("raw"):
            return self.space.take_multiple_encoded(
                args["template"], args["max_entries"], txn=txn,
                timeout_ms=args["timeout_ms"],
            )
        return self.space.take_multiple(
            args["template"], args["max_entries"], txn=txn,
            timeout_ms=args["timeout_ms"],
        )

    def _op_contents(self, args, txn, transactions, conn) -> Any:
        return self.space.contents(args["template"], txn=txn)

    def _op_txn_create(self, args, txn, transactions, conn) -> Any:
        new_txn = self.txn_manager.create(args["timeout_ms"])
        transactions[new_txn.txn_id] = new_txn
        return new_txn.txn_id

    def _op_txn_commit(self, args, txn, transactions, conn) -> Any:
        txn = transactions.pop(args["id"], None)
        if txn is None:
            raise TransactionError(f"unknown transaction id {args['id']}")
        txn.commit()
        return None

    def _op_txn_abort(self, args, txn, transactions, conn) -> Any:
        txn = transactions.pop(args["id"], None)
        if txn is None:
            raise TransactionError(f"unknown transaction id {args['id']}")
        txn.abort()
        return None

    def _op_notify(self, args, txn, transactions, conn) -> Any:
        return self._register_notify(args, conn)

    def _op_ping(self, args, txn, transactions, conn) -> Any:
        # Supervisor probes double as lease renewals; an ordinary client
        # ping never does, so a mere worker cannot keep a deposed primary
        # alive.  Renewal is refused once the server is superseded, and —
        # crucially — once the lease has *already expired*: a stale ping
        # released by a healing pause must not resurrect a self-fenced
        # primary whose standby may have been promoted in the meantime.
        # Only an explicit ``grant_lease`` (the supervisor re-arming its
        # watch) un-fences.
        if args.get("renew_lease") and self.lease_ms is not None:
            now = self.runtime.now()
            if not self.superseded and (self._lease_expires is None
                                        or now <= self._lease_expires):
                # The renewal extends the lease only to the *supervisor's*
                # bound (probe-send time + lease_ms), not to arrival time
                # + lease_ms: a renewal that crawled through a slow or
                # one-way-partitioned link must not grant more lease than
                # the supervisor will wait out before promoting, or the
                # two primaries overlap.  Legacy renewals without a bound
                # keep the arrival-clock rule.
                bound = args.get("valid_until")
                granted = now + self.lease_ms if bound is None else float(bound)
                if self._lease_expires is None or granted > self._lease_expires:
                    self._lease_expires = granted
        # The reply reports the fence state: a probe that finds the lease
        # expired tells the supervisor this primary is self-fenced and will
        # stay so (renewal was just refused above) — reachable-but-fenced
        # must trigger promotion, or the space stays read-only forever.
        return {
            "pong": True,
            "epoch": self.epoch,
            "superseded": self.superseded,
            "lease_expired": (
                self._lease_expires is not None
                and self.runtime.now() > self._lease_expires),
        }

    def _op_fence(self, args, txn, transactions, conn) -> Any:
        """Demotion order from a supervisor: a newer primary exists.

        Idempotent — repeated fences (the supervisor retries until the
        partition heals) all land on the same superseded flag.  The reply
        acknowledges with this server's final epoch so the supervisor
        knows the order arrived.
        """
        new_epoch = args.get("epoch", 0)
        if new_epoch > self.epoch and not self.superseded:
            self.superseded = True
            # Free the listen address for the machine's rejoin as a
            # standby (the ack is already on the wire when this fires);
            # stragglers get connection-refused and re-discover.
            self.runtime.call_later(0.0, lambda: self.stop(drain_ms=1_000.0))
        return {"epoch": self.epoch, "superseded": self.superseded}

    def _op_batch(self, args, txn, transactions, conn) -> Any:
        """Execute a pipeline of sub-operations from one network message.

        Sub-ops run strictly in request order and stop at the first
        failure: later sub-ops are *not* attempted (their replies are
        simply absent), so a client can treat the reply list's length as
        the count of operations that actually ran.  One message each way
        replaces one round trip per operation — the proxy-side win that
        lets a pipelined worker do take+compute+write+commit in two
        RPCs per *batch* instead of four per *task*.

        A sub-op may name a transaction created *earlier in the same
        batch* with ``txn_id={"batch_ref": k}`` (``k`` = index of the
        ``txn_create`` sub-op): the placeholder resolves to that reply's
        id, so ``txn_create`` + ``take_multiple`` need only one round
        trip even though the client never saw the id.
        """
        replies: list[dict[str, Any]] = []
        # Admission runs over the *whole* pipeline before any sub-op
        # executes: a rejected batch therefore has zero side effects (no
        # executed prefix), the same pre-dispatch guarantee lone ops get
        # — which is what makes the proxy's blind retry-after-backoff
        # safe even for non-idempotent passengers.
        if self.admission is not None:
            for sub in args["ops"]:
                self.admission.check(sub.get("op"), sub.get("args", {}))
        for sub in args["ops"]:
            op = sub.get("op")
            handler = _DISPATCH.get(op)
            if handler is None or op in _NON_BATCHABLE:
                replies.append({"ok": False, "type": "SpaceError",
                                "error": f"not batchable: {op!r}"})
                break
            sub_args = sub.get("args", {})
            sub_txn = None
            bad_ref = _SENTINEL = object()
            # "txn_id" names the transaction of space ops; "id" names the
            # one txn_commit/txn_abort act on — both may be placeholders.
            for key in ("txn_id", "id"):
                value = sub_args.get(key)
                if not isinstance(value, dict):
                    continue
                ref = value.get("batch_ref")
                if (not isinstance(ref, int) or not 0 <= ref < len(replies)
                        or not replies[ref].get("ok")):
                    bad_ref = ref
                    break
                sub_args = dict(sub_args)
                sub_args[key] = replies[ref]["value"]
            if bad_ref is not _SENTINEL:
                replies.append({"ok": False, "type": "TransactionError",
                                "error": f"bad batch_ref {bad_ref!r}"})
                break
            txn_id = sub_args.get("txn_id")
            if txn_id is not None:
                sub_txn = transactions.get(txn_id)
                if sub_txn is None:
                    replies.append({"ok": False, "type": "TransactionError",
                                    "error": f"unknown transaction id {txn_id}"})
                    break
            try:
                value = handler(self, sub_args, sub_txn, transactions, conn)
            except ConnectionClosedError:
                raise
            except Exception as exc:
                replies.append(_error_reply(exc))
                break
            replies.append({"ok": True, "value": value})
        return {"replies": replies}

    def _op_replicate(self, args, txn, transactions, conn) -> Any:
        """Bootstrap a standby and turn this connection into its feed.

        The reply (snapshot + log tail) is sent and the live subscription
        attached under one space-lock hold, so the cut is consistent: no
        commit can land between the tail we ship and the first streamed
        record, and none is shipped twice.
        """
        space = self.space
        wal = getattr(space, "wal", None)
        if wal is None:
            raise SpaceError("space is not durable; nothing to replicate")
        with space._lock:
            snapshot = wal.store.snapshot
            base_lsn = max(
                snapshot[0] if snapshot is not None else 0,
                args.get("from_lsn", 0),
            )
            conn.send({"ok": True, "value": {
                "snapshot": snapshot,
                "records": wal.records_since(base_lsn),
                # The standby adopts the primary's epoch even when no
                # commit has happened under it yet, so chained failovers
                # keep strictly increasing epochs.
                "epoch": wal.epoch,
            }})

            # Commit records are buffered and shipped as one
            # ``repl_batch`` message per kernel tick: the flush timer at
            # delay 0 runs after the current event finishes, so every
            # record committed at the same virtual instant (a write_all,
            # a transaction pipeline) rides one network message instead
            # of paying per-record latency.
            pending: list[Any] = []
            armed = [False]

            def flush(c: StreamSocket = conn) -> None:
                armed[0] = False
                if not pending:
                    return
                batch, pending[:] = list(pending), []
                try:
                    c.send({"repl_batch": batch})
                except (ConnectionClosedError, NetworkError):
                    wal.unsubscribe(feed)  # standby gone; stop feeding it

            def feed(record: Any) -> None:
                pending.append(record)
                if not armed[0]:
                    armed[0] = True
                    self.runtime.call_later(0.0, flush)

            wal.subscribe(feed)
            # Track this feed for synchronous-replication gating.  It
            # starts unconfirmed (-1): until the standby acks the
            # bootstrap, mutations must not trust the snapshot we just
            # put on the wire — it may never arrive.
            with self._repl_cond:
                self._feed_acks[conn] = -1
                self._repl_cond.notify_all()
        return _STREAMING

    def _register_notify(self, args: dict[str, Any], conn: StreamSocket) -> int:
        """Forward matching events to the client's event channel."""
        target = Address(args["host"], args["event_port"])
        channel = self._event_channels.get(target)
        if channel is None or channel.closed:
            channel = self.network.connect(self.address.host, target)
            self._event_channels[target] = channel

        def listener(event: RemoteEvent) -> None:
            try:
                channel.send(
                    {"registration_id": event.registration_id, "sequence": event.sequence,
                     "source": event.source}
                )
            except ConnectionClosedError:
                pass

        reg = self.space.notify(args["template"], listener, lease_ms=args["lease_ms"])
        return reg.registration_id


#: op name → unbound SpaceServer handler; a dict probe replaces the former
#: if-chain so dispatch cost no longer depends on the op's position.
_DISPATCH: dict[str, Callable[..., Any]] = {
    "write": SpaceServer._op_write,
    "read": SpaceServer._op_read,
    "take": SpaceServer._op_take,
    "count": SpaceServer._op_count,
    "exists": SpaceServer._op_exists,
    "write_all": SpaceServer._op_write_all,
    "take_multiple": SpaceServer._op_take_multiple,
    "contents": SpaceServer._op_contents,
    "txn_create": SpaceServer._op_txn_create,
    "txn_commit": SpaceServer._op_txn_commit,
    "txn_abort": SpaceServer._op_txn_abort,
    "notify": SpaceServer._op_notify,
    "ping": SpaceServer._op_ping,
    "fence": SpaceServer._op_fence,
    "replicate": SpaceServer._op_replicate,
    "batch": SpaceServer._op_batch,
}


class RemoteTransaction:
    """Client-side handle on a server transaction."""

    def __init__(self, proxy: "SpaceProxy", txn_id: Any) -> None:
        self._proxy = proxy
        self.txn_id = txn_id
        self.completed = False

    def commit(self) -> None:
        self._proxy._call("txn_commit", {"id": self.txn_id})
        self.completed = True

    def abort(self) -> None:
        self._proxy._call("txn_abort", {"id": self.txn_id})
        self.completed = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if self.completed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class ProxyBatch:
    """Collects compatible operations into one pipelined ``batch`` RPC.

    Build the pipeline with the JavaSpace-shaped methods, then
    :meth:`flush` sends everything in one network message and returns the
    per-operation results in order.  The server stops at the first
    failing sub-op; :meth:`flush` re-raises that error (reconstructed by
    type, like single calls) after running the side effects of the
    successful prefix — in particular a transaction whose ``commit`` rode
    in the batch is marked completed iff the commit actually ran, so its
    context manager never double-completes it.

    Retry semantics are inherited unchanged from PR 2: the whole batch is
    transparently re-issued on reconnect only if *every* sub-op is
    idempotent; otherwise the disconnect surfaces to the caller.
    """

    def __init__(self, proxy: "SpaceProxy") -> None:
        self._proxy = proxy
        self._ops: list[tuple[str, dict[str, Any]]] = []
        self._post: list[tuple[int, Callable[[Any], None]]] = []
        #: Sub-op index → reply shape on the zero-copy wire path:
        #: "one" (a single raw frame or None) or "many" (a frame list).
        self._decode: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._ops)

    def _add(self, op: str, args: dict[str, Any],
             post: Optional[Callable[[Any], None]] = None) -> int:
        self._ops.append((op, args))
        if post is not None:
            self._post.append((len(self._ops) - 1, post))
        return len(self._ops) - 1

    # -- the batchable operation set ----------------------------------------

    def write(self, entry: Entry, txn: Optional["RemoteTransaction"] = None,
              lease_ms: float = FOREVER, requeue: bool = False) -> int:
        if self._proxy._compact:
            if not isinstance(entry, Entry):
                raise SpaceError(f"not an Entry: {type(entry).__name__}")
            args = {"entry_data": encode_entry(entry), "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        else:
            args = {"entry": entry, "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        if requeue:
            args["requeue"] = True
        return self._add("write", args)

    def write_all(self, entries: list[Entry],
                  txn: Optional["RemoteTransaction"] = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        if self._proxy._compact:
            for entry in entries:
                if not isinstance(entry, Entry):
                    raise SpaceError(f"not an Entry: {type(entry).__name__}")
            args = {"entries_data": [encode_entry(e) for e in entries],
                    "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        else:
            args = {"entries": entries, "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        if requeue:
            args["requeue"] = True
        return self._add("write_all", args)

    def read(self, template: Entry, txn: Optional["RemoteTransaction"] = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        args = {"template": template, "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._proxy._compact:
            args["raw"] = True
            index = self._add("read", args)
            self._decode[index] = "one"
            return index
        return self._add("read", args)

    def take(self, template: Entry, txn: Optional["RemoteTransaction"] = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        args = {"template": template, "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._proxy._compact:
            args["raw"] = True
            index = self._add("take", args)
            self._decode[index] = "one"
            return index
        return self._add("take", args)

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Optional["RemoteTransaction"] = None,
                      timeout_ms: Optional[float] = 0.0) -> int:
        args = {"template": template, "max_entries": max_entries,
                "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._proxy._compact:
            args["raw"] = True
            index = self._add("take_multiple", args)
            self._decode[index] = "many"
            return index
        return self._add("take_multiple", args)

    def count(self, template: Entry) -> int:
        return self._add("count", {"template": template, "txn_id": None})

    def txn_create(self, timeout_ms: float = FOREVER) -> "RemoteTransaction":
        """Open a transaction inside this batch.

        The returned handle carries a ``{"batch_ref": k}`` placeholder id
        that later ops *in the same batch* may use as their ``txn=``; the
        server resolves it, and :meth:`flush` swaps in the real id so the
        handle then works like any :meth:`SpaceProxy.transaction` result.
        """
        txn = RemoteTransaction(self._proxy, None)
        index = self._add("txn_create", {"timeout_ms": timeout_ms},
                          post=lambda value: setattr(txn, "txn_id", value))
        txn.txn_id = {"batch_ref": index}
        return txn

    def commit(self, txn: "RemoteTransaction") -> int:
        return self._add("txn_commit", {"id": txn.txn_id},
                         post=lambda _: setattr(txn, "completed", True))

    def abort(self, txn: "RemoteTransaction") -> int:
        return self._add("txn_abort", {"id": txn.txn_id},
                         post=lambda _: setattr(txn, "completed", True))

    # -- execution -----------------------------------------------------------

    def flush(self) -> list[Any]:
        """Send the pipeline as one RPC; return per-op values in order."""
        if not self._ops:
            return []
        ops, self._ops = self._ops, []
        post, self._post = self._post, []
        decode, self._decode = self._decode, {}
        replies = self._proxy._call_batch(ops)
        for index, hook in post:
            if index < len(replies) and replies[index].get("ok"):
                hook(replies[index].get("value"))
        results: list[Any] = []
        for i, (op, _) in enumerate(ops):
            if i >= len(replies):
                raise SpaceError(
                    f"batched {op} skipped: an earlier operation failed")
            reply = replies[i]
            if not reply.get("ok"):
                _raise_remote(reply, op)
            value = reply.get("value")
            shape = decode.get(i)
            if shape == "one":
                value = decode_any(value) if value is not None else None
            elif shape == "many":
                value = [decode_any(v) for v in value]
            results.append(value)
        return results


class SpaceProxy:
    """Client stub with the JavaSpace operation set.

    One proxy per client process: requests are serialized on a single
    connection (matching the blocking JavaSpaces client API).

    With a :class:`RecoveryPolicy` the proxy is *self-healing*: a dropped
    or timed-out connection is re-established with capped exponential
    backoff (jitter drawn from ``rng``, virtual time only), idempotent
    operations are transparently re-issued, and non-idempotent ones raise
    :class:`ConnectionClosedError` to let the caller restart its work
    cycle — its server-side transaction was already aborted by the drop.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        server_address: Address,
        recovery: Optional[RecoveryPolicy] = None,
        rng: Any = None,
        metrics: Any = None,
        locator: Optional[Callable[[], Optional[Address]]] = None,
        tracer: Any = None,
        codec: str = "pickle",
    ) -> None:
        if codec not in CODECS:
            raise SpaceError(f"unknown codec {codec!r}; expected one of {CODECS}")
        self.network = network
        self.host = host
        self.server_address = server_address
        #: ``"compact"`` turns on the zero-copy wire path: entries are
        #: encoded once client-side (``entry_data``/``entries_data``
        #: request fields), and take/read replies ship the server's
        #: stored frames (``raw`` flag) for a single decode here.
        #: Templates always travel as live objects — the server matches
        #: on their fields.
        self.codec = codec
        self._compact = codec == "compact"
        self.recovery = recovery
        self._rng = rng
        self._metrics = metrics
        #: Optional telemetry tracer: each RPC (and pipelined batch)
        #: becomes a span, parented to the caller's ambient span so task
        #: traces show their space round trips.  ``None``/disabled costs
        #: one attribute check per call.
        self._tracer = tracer
        #: Optional service locator (e.g. a Jini lookup query) consulted on
        #: every reconnect: after a failover the proxy re-discovers the
        #: promoted standby instead of hammering the dead primary address.
        self._locator = locator
        self._conn: Optional[StreamSocket] = None
        self._event_listener = None
        self._event_handlers: dict[int, Callable[[RemoteEvent], Any]] = {}
        self._failed = False
        self._connects = 0
        self._dial_failures = 0
        self.reconnects = 0
        self.retries = 0
        #: Last primary epoch learned from the locator; stamped on every
        #: request so a deposed primary rejects us (and we rediscover)
        #: instead of silently accepting a write the cluster moved past.
        self.epoch: Optional[int] = None
        #: Calls rejected with :class:`FencedError` and re-routed.
        self.fenced = 0
        #: Calls rejected with :class:`AdmissionError` and backed off.
        self.admission_rejected = 0

    # -- plumbing ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate host death: every subsequent call raises, and the open
        connection drops so the server aborts this client's transactions
        (fault-injection hook used by crash experiments)."""
        self._failed = True
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> StreamSocket:
        if self._failed:
            raise ConnectionClosedError("proxy host crashed")
        if self._conn is None or self._conn.closed:
            # Re-discover on any *re*connect — including a first connect
            # that keeps failing: a proxy born after a failover (restarted
            # master) must not hammer the dead configured address forever.
            if self._locator is not None and \
                    (self._connects > 0 or self._dial_failures > 0):
                self._rediscover()
            try:
                self._conn = self.network.connect(self.host, self.server_address)
            except (ConnectionRefusedError_, NetworkError):
                self._dial_failures += 1
                raise
            self._connects += 1
            if self._connects > 1:
                self.reconnects += 1
                if self._metrics is not None:
                    self._metrics.event("proxy-reconnected", host=self.host)
        return self._conn

    def _rediscover(self) -> None:
        """Ask the locator where the space lives now (reconnect path).

        A locator failure (registrar briefly down) falls back to the last
        known address — the normal backoff loop covers that window.
        """
        try:
            fresh = self._locator()
        except (ConnectionClosedError, ConnectionRefusedError_, SpaceError):
            return
        except Exception:
            return  # lookup substrate errors: keep the cached address
        if fresh is not None and fresh != self.server_address:
            self.server_address = fresh
            if self._metrics is not None:
                self._metrics.event("proxy-rediscovered", host=self.host,
                                    address=str(fresh))
        # Locators that track the primary epoch (JiniSpaceLocator) expose
        # it after each lookup; adopt it monotonically.
        learned = getattr(self._locator, "epoch", None)
        if learned is not None and (self.epoch is None
                                    or learned > self.epoch):
            self.epoch = learned

    def _drop_connection(self) -> None:
        """Discard the current connection so a late reply from a dead RPC
        can never be mistaken for the next call's answer."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _call_once(self, op: str, args: dict[str, Any]) -> Any:
        conn = self._connection()
        request: dict[str, Any] = {"op": op, "args": args}
        if self.epoch is not None:
            request["epoch"] = self.epoch
        conn.send(request)
        timeout_ms = self.recovery.call_timeout_ms if self.recovery else None
        if timeout_ms is not None and op in _BLOCKING_OPS:
            # The RPC budget covers transport + dispatch; the op's own wait
            # budget is spent server-side on purpose and must be added, not
            # mistaken for a dead connection.
            wait = args.get("timeout_ms")
            timeout_ms = None if wait is None else timeout_ms + wait
        reply = conn.receive(timeout_ms=timeout_ms)
        if reply is None:
            self._drop_connection()
            raise ConnectionClosedError(f"space rpc {op!r} timed out")
        if reply.get("ok"):
            return reply.get("value")
        _raise_remote(reply, op)

    def _call(self, op: str, args: dict[str, Any]) -> Any:
        retriable = self.recovery is not None and op in _IDEMPOTENT_OPS
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return self._call_with_recovery(
                op, lambda: self._call_once(op, args), retriable)
        span = self._rpc_span(f"rpc.{op}", tracer)
        with span:
            value = self._call_with_recovery(
                op, lambda: self._call_once(op, args), retriable)
        return value

    def _rpc_span(self, name: str, tracer: Any):
        """Open an RPC span under the caller's ambient span (if any)."""
        parent = tracer.current
        if parent is not None:
            return tracer.start(name, trace_id=parent.trace_id,
                                parent_id=parent.span_id, proc=self.host)
        return tracer.start(name, trace_id=f"rpc/{self.host}",
                            proc=self.host)

    def _call_with_recovery(self, label: str, attempt_fn: Callable[[], Any],
                            retriable: bool) -> Any:
        attempt = 0
        while True:
            try:
                return attempt_fn()
            except AdmissionError as exc:
                # Rejected *before* execution (like a fence), so the
                # re-issue is safe regardless of idempotency.  Honour the
                # server's retry-after hint, floored by the capped-exp
                # backoff schedule; the connection itself is healthy and
                # is kept.
                if self._failed or self.recovery is None:
                    raise
                attempt += 1
                if attempt > self.recovery.max_retries:
                    raise
                self.admission_rejected += 1
                if self._metrics is not None:
                    self._metrics.event(
                        "admission-rejected", host=self.host, op=label,
                        attempt=attempt, tenant=exc.tenant,
                        reason=exc.reason)
                self.network.runtime.sleep(max(
                    exc.retry_after_ms,
                    self.recovery.backoff_ms(attempt, self._rng),
                ))
            except FencedError:
                # The server rejected the request *before* executing it,
                # so re-issuing is safe regardless of idempotency.  Drop
                # the connection and retry — the reconnect path
                # re-discovers the current primary (and its epoch).
                self._drop_connection()
                if self._failed or self.recovery is None:
                    raise
                attempt += 1
                if attempt > self.recovery.max_retries:
                    raise
                self.fenced += 1
                if self._metrics is not None:
                    self._metrics.event("proxy-fenced", host=self.host,
                                        op=label, attempt=attempt)
                self.network.runtime.sleep(
                    self.recovery.backoff_ms(attempt, self._rng)
                )
            except (ConnectionClosedError, ConnectionRefusedError_):
                self._drop_connection()
                if self._failed or not retriable:
                    raise
                attempt += 1
                if attempt > self.recovery.max_retries:
                    raise
                self.retries += 1
                if self._metrics is not None:
                    self._metrics.event("proxy-retry", host=self.host,
                                        op=label, attempt=attempt)
                self.network.runtime.sleep(
                    self.recovery.backoff_ms(attempt, self._rng)
                )

    # -- request pipelining ------------------------------------------------------

    def batch(self) -> "ProxyBatch":
        """Start collecting operations for one pipelined ``batch`` RPC."""
        return ProxyBatch(self)

    def _batch_once(self, ops: list[tuple[str, dict[str, Any]]]) -> list[dict]:
        conn = self._connection()
        request: dict[str, Any] = {
            "op": "batch",
            "args": {"ops": [{"op": o, "args": a} for o, a in ops]}}
        if self.epoch is not None:
            request["epoch"] = self.epoch
        conn.send(request)
        timeout_ms = self.recovery.call_timeout_ms if self.recovery else None
        if timeout_ms is not None:
            # Sub-ops execute sequentially server-side, so the reply
            # deadline must cover the *sum* of their wait budgets on top
            # of the single RPC budget (same rule as _call_once, summed).
            for op, args in ops:
                if op in _BLOCKING_OPS:
                    wait = args.get("timeout_ms")
                    if wait is None:
                        timeout_ms = None
                        break
                    timeout_ms += wait
        reply = conn.receive(timeout_ms=timeout_ms)
        if reply is None:
            self._drop_connection()
            raise ConnectionClosedError("space rpc 'batch' timed out")
        if reply.get("ok"):
            return reply["value"]["replies"]
        _raise_remote(reply, "batch")

    def _call_batch(self, ops: list[tuple[str, dict[str, Any]]]) -> list[dict]:
        # A batch is transparently retriable only if *every* sub-op is —
        # one non-idempotent passenger (write/take/commit) makes a blind
        # re-issue unsafe, exactly as for a lone call.
        retriable = (self.recovery is not None
                     and all(op in _IDEMPOTENT_OPS for op, _ in ops))
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return self._call_with_recovery(
                "batch", lambda: self._batch_once(ops), retriable)
        span = self._rpc_span("rpc.batch", tracer)
        span.annotate(ops=[op for op, _ in ops])
        with span:
            value = self._call_with_recovery(
                "batch", lambda: self._batch_once(ops), retriable)
        return value

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._event_listener is not None:
            self._event_listener.close()
            self._event_listener = None

    # -- JavaSpace API ----------------------------------------------------------------

    def write(self, entry: Entry, txn: Optional[RemoteTransaction] = None,
              lease_ms: float = FOREVER,
              requeue: bool = False) -> dict[str, Any]:
        if self._compact:
            if not isinstance(entry, Entry):
                raise SpaceError(f"not an Entry: {type(entry).__name__}")
            args = {"entry_data": encode_entry(entry), "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        else:
            args = {"entry": entry, "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        if requeue:
            # Worker re-queue of already-admitted tasks: exempt from
            # admission control (shedding it would break exactly-once).
            args["requeue"] = True
        return self._call("write", args)

    def read(self, template: Entry, txn: Optional[RemoteTransaction] = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        args = {"template": template, "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._compact:
            args["raw"] = True
            value = self._call("read", args)
            return decode_any(value) if value is not None else None
        return self._call("read", args)

    def take(self, template: Entry, txn: Optional[RemoteTransaction] = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        args = {"template": template, "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._compact:
            args["raw"] = True
            value = self._call("take", args)
            return decode_any(value) if value is not None else None
        return self._call("take", args)

    def read_if_exists(self, template: Entry, txn: Optional[RemoteTransaction] = None):
        return self.read(template, txn, timeout_ms=0.0)

    def take_if_exists(self, template: Entry, txn: Optional[RemoteTransaction] = None):
        return self.take(template, txn, timeout_ms=0.0)

    def count(self, template: Entry) -> int:
        return self._call("count", {"template": template, "txn_id": None})

    def exists(self, template: Entry,
               timeout_ms: Optional[float] = None) -> bool:
        """Block until a matching entry is present (non-consuming) and
        return whether one was seen — a ``read`` whose reply carries one
        bit instead of the entry."""
        return bool(self._call(
            "exists", {"template": template, "timeout_ms": timeout_ms,
                       "txn_id": None}))

    def write_all(self, entries: list[Entry],
                  txn: Optional[RemoteTransaction] = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        if self._compact:
            for entry in entries:
                if not isinstance(entry, Entry):
                    raise SpaceError(f"not an Entry: {type(entry).__name__}")
            args = {"entries_data": [encode_entry(e) for e in entries],
                    "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        else:
            args = {"entries": entries, "lease_ms": lease_ms,
                    "txn_id": txn.txn_id if txn else None}
        if requeue:
            args["requeue"] = True
        reply = self._call("write_all", args)
        return reply["count"]

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Optional[RemoteTransaction] = None,
                      timeout_ms: Optional[float] = None) -> list[Entry]:
        args = {"template": template, "max_entries": max_entries,
                "timeout_ms": timeout_ms,
                "txn_id": txn.txn_id if txn else None}
        if self._compact:
            args["raw"] = True
            return [decode_any(v) for v in self._call("take_multiple", args)]
        return self._call("take_multiple", args)

    def contents(self, template: Entry,
                 txn: Optional[RemoteTransaction] = None) -> list[Entry]:
        return self._call(
            "contents",
            {"template": template, "txn_id": txn.txn_id if txn else None},
        )

    def transaction(self, timeout_ms: float = FOREVER) -> RemoteTransaction:
        txn_id = self._call("txn_create", {"timeout_ms": timeout_ms})
        return RemoteTransaction(self, txn_id)

    def ping(self) -> bool:
        reply = self._call("ping", {})
        return bool(reply) and (reply == "pong" or bool(reply.get("pong")))

    # -- notify ---------------------------------------------------------------------

    def notify(
        self,
        template: Entry,
        listener: Callable[[RemoteEvent], Any],
        lease_ms: float = FOREVER,
        runtime: Optional[Runtime] = None,
    ) -> int:
        """Register for remote events; spawns a local event-pump process."""
        if runtime is None:
            raise SpaceError("notify over a proxy needs the runtime to pump events")
        if self._event_listener is None:
            event_address = self.network.ephemeral(self.host)
            self._event_listener = self.network.listen(event_address)
            self._event_port = event_address.port
            runtime.spawn(self._event_pump, name=f"space-events:{self.host}")
        reg_id = self._call(
            "notify",
            {"template": template, "lease_ms": lease_ms,
             "host": self.host, "event_port": self._event_port},
        )
        self._event_handlers[reg_id] = listener
        return reg_id

    def _event_pump(self) -> None:
        try:
            channel = self._event_listener.accept(timeout_ms=None)
            if channel is None:
                return
            while True:
                message = channel.receive(timeout_ms=None)
                if message is None:
                    continue
                handler = self._event_handlers.get(message["registration_id"])
                if handler is not None:
                    handler(
                        RemoteEvent(
                            message["source"], message["registration_id"], message["sequence"]
                        )
                    )
        except ConnectionClosedError:
            return
