"""Failover plumbing: locate the space via Jini, promote the standby.

:class:`JiniSpaceLocator` is the client half — a callable handed to
:class:`~repro.tuplespace.proxy.SpaceProxy` as its ``locator`` so a
reconnect asks the lookup service *where the space lives now* instead of
hammering a dead address.

:class:`SpaceSupervisor` is the control half — it heartbeats the primary
:class:`~repro.tuplespace.proxy.SpaceServer` and, after ``max_misses``
consecutive missed probes, promotes the :class:`~repro.tuplespace.durable.HotStandby`,
cancels the primary's lookup registration and registers the standby's
address under the same service attributes.  From that point every
locator-equipped proxy re-discovers the new primary on its next
reconnect.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    LookupError_,
    NetworkError,
)
from repro.jini.join import LookupClient
from repro.jini.lookup import ServiceItem
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime
from repro.tuplespace.durable import HotStandby
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.proxy import SpaceServer
from repro.tuplespace.transaction import TransactionManager

__all__ = ["JiniSpaceLocator", "SpaceSupervisor"]


class JiniSpaceLocator:
    """Resolve the space's current address through the lookup service.

    Returns the *highest-epoch* matching registration (ties broken by
    recency) — after a failover both the stale primary item (until its
    cancel/lease-expiry lands) and the standby item may briefly coexist.
    Registrations that never carried an ``epoch`` attribute all rank as
    epoch 0, which degrades to the original newest-wins rule.

    After each successful lookup, :attr:`epoch` holds the chosen
    registration's epoch; a :class:`~repro.tuplespace.proxy.SpaceProxy`
    adopts it on re-discovery and stamps it on every request, which is
    how the client side of the fence stays current.
    """

    def __init__(self, network: Network, host: str, registrar: Address,
                 query: dict[str, Any],
                 call_timeout_ms: Optional[float] = 5_000.0) -> None:
        self.network = network
        self.host = host
        self.registrar = registrar
        self.query = query
        self.call_timeout_ms = call_timeout_ms
        #: Epoch of the last registration returned, if it carried one.
        self.epoch: Optional[int] = None

    def __call__(self) -> Optional[Address]:
        client = LookupClient(self.network, self.host, self.registrar,
                              call_timeout_ms=self.call_timeout_ms)
        try:
            items = client.lookup(self.query)
        finally:
            client.close()
        if not items:
            return None
        best = max(
            enumerate(items),
            key=lambda pair: (int(pair[1].attributes.get("epoch", 0)),
                              pair[0]),
        )[1]
        if "epoch" in best.attributes:
            self.epoch = int(best.attributes["epoch"])
        return best.service


class SpaceSupervisor:
    """Promote the hot standby when the primary stops answering pings.

    Detection is deliberately dumb — ``max_misses`` consecutive failed
    probes at ``heartbeat_ms`` intervals — which makes the failover time
    a deterministic function of the fault time under simulation.
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        standby: HotStandby,
        primary_address: Address,
        registrar: Address,
        service_item: ServiceItem,
        heartbeat_ms: float = 250.0,
        probe_timeout_ms: Optional[float] = None,
        max_misses: int = 3,
        old_registration_id: Optional[int] = None,
        metrics: Any = None,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.standby = standby
        self.primary_address = primary_address
        self.registrar = registrar
        self.service_item = service_item
        self.heartbeat_ms = heartbeat_ms
        self.probe_timeout_ms = (
            probe_timeout_ms if probe_timeout_ms is not None else heartbeat_ms
        )
        self.max_misses = max_misses
        self.old_registration_id = old_registration_id
        self.metrics = metrics
        self.failed_over = False
        self.failovers = 0
        self.server: Optional[SpaceServer] = None
        self._running = False
        #: Expiry bound of the last lease renewal that *may have reached*
        #: the primary (every probe we managed to put on the wire counts,
        #: acknowledged or not).  Promotion waits this moment out unless
        #: the primary is provably lease-less — see :meth:`_failover`.
        self._lease_valid_until: Optional[float] = None
        #: Standbys this supervisor spawned itself (demoted primaries
        #: rejoining the replication chain); stopped with the supervisor.
        self._spawned_standbys: list[HotStandby] = []

    @property
    def lease_ms(self) -> float:
        """Primary lease granted to whichever server we supervise.

        Sized so the lease expires no later than a promotion can happen:
        renewals ride every successful probe (one per ``heartbeat_ms``),
        and promotion needs ``max_misses`` failed probes at the same
        cadence — so a primary that stops hearing from us self-fences
        before its replacement starts acknowledging writes.
        """
        return self.heartbeat_ms * self.max_misses

    @property
    def epoch(self) -> int:
        """Epoch of the primary currently (or last) supervised."""
        return self.standby.space.wal.epoch

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # The deployment grants the initial lease around now; assume the
        # worst (it runs its full course) until probes refine the bound.
        self._lease_valid_until = self.runtime.now() + self.lease_ms
        self.runtime.spawn(self._watch, name=f"space-supervisor:{self.host}")

    def stop(self) -> None:
        self._running = False
        for standby in self._spawned_standbys:
            standby.stop()

    # -- watchdog ------------------------------------------------------------

    def _watch(self) -> None:
        misses = 0
        all_dead = True  # every miss so far was a hard connection refusal
        generation = self.failovers
        while self._running and self.failovers == generation:
            self.runtime.sleep(self.heartbeat_ms)
            if not self._running or self.failovers != generation:
                return
            status = self._probe()
            if status == "ok":
                misses = 0
                all_dead = True
                continue
            if status == "fenced":
                # The primary answered but is self-fenced: its lease
                # expired (a pause/partition outlived lease_ms) and
                # renewal was refused.  It will never serve again on its
                # own — only promotion restores a writable space.
                if self.metrics is not None:
                    self.metrics.event("primary-self-fenced",
                                       address=str(self.primary_address))
                self._failover(wait_lease=False)
                return
            misses += 1
            all_dead = all_dead and status == "dead"
            if self.metrics is not None:
                self.metrics.event("primary-heartbeat-miss", misses=misses,
                                   status=status)
            if misses >= self.max_misses:
                # A run of pure connection-refusals proves nothing
                # listens there — no one holds a lease, promote at once.
                # Any "lost" probe (timeout, drop) leaves open that the
                # primary heard a renewal whose ack we never saw, so
                # promotion must wait that renewal out.
                self._failover(wait_lease=not all_dead)
                return

    def _probe(self) -> str:
        """One ping round-trip to the primary.

        ``"ok"`` — alive and serving; ``"fenced"`` — alive but refusing
        ops (expired lease or superseded: promote, it cannot recover by
        itself); ``"dead"`` — connection refused with no partition in
        the way (nothing listens there); ``"lost"`` — sent but no answer,
        or unreachable behind a partition: the primary's state is unknown.

        The probe doubles as a *lease renewal*: a primary that can still
        hear us keeps acknowledging writes, one that cannot self-fences
        after :attr:`lease_ms` — strictly before we would promote.  The
        renewal carries its own expiry bound (``valid_until``, stamped
        from *our* clock before the send), and we remember that bound the
        moment the request is on the wire: under an asymmetric partition
        the request may arrive and renew the lease even though the reply
        never comes back, and promotion must assume exactly that.
        """
        try:
            conn = self.network.connect(self.host, self.primary_address)
        except ConnectionRefusedError_:
            if (self.network.is_partitioned(self.host,
                                            self.primary_address.host)
                    or self.network.is_partitioned(self.primary_address.host,
                                                   self.host)):
                return "lost"
            return "dead"
        except NetworkError:
            return "lost"
        try:
            valid_until = self.runtime.now() + self.lease_ms
            conn.send({"op": "ping", "args": {"renew_lease": True,
                                              "valid_until": valid_until}})
            # On the wire: the primary may honour it even if we never
            # hear back.
            if (self._lease_valid_until is None
                    or valid_until > self._lease_valid_until):
                self._lease_valid_until = valid_until
            reply = conn.receive(timeout_ms=self.probe_timeout_ms)
            if not reply or not reply.get("ok"):
                return "lost"
            value = reply.get("value")
            if isinstance(value, dict) and (value.get("lease_expired")
                                            or value.get("superseded")):
                return "fenced"
            return "ok"
        except (ConnectionClosedError, NetworkError):
            return "lost"
        finally:
            conn.close()

    def _failover(self, wait_lease: bool = True) -> None:
        """The promotion sequence: wait out any lease the unreachable
        primary may still hold, serve the replica, fix the registry,
        fence the deposed primary, and shepherd it back in as a standby."""
        if wait_lease and self._lease_valid_until is not None:
            # Split-brain guard: the last renewal we put on the wire may
            # have reached the primary even though its ack did not reach
            # us.  Until that grant expires the old primary is *entitled*
            # to acknowledge writes, so promoting now would put two
            # willing primaries on the network.  (+1 virtual ms clears
            # the boundary instant: the fence check on the primary is
            # ``now > expires``, so at exactly ``expires`` it still
            # serves.)
            remaining = self._lease_valid_until + 1.0 - self.runtime.now()
            if remaining > 0:
                if self.metrics is not None:
                    self.metrics.event("failover-lease-wait",
                                       wait_ms=remaining)
                self.runtime.sleep(remaining)
            if not self._running:
                return
        self.failed_over = True
        self.failovers += 1
        old_primary = self.primary_address
        self.server = self.standby.promote(
            TransactionManager(self.runtime, metrics=self.metrics)
        )
        new_epoch = self.standby.space.wal.epoch
        client = LookupClient(self.network, self.host, self.registrar)
        try:
            if self.old_registration_id is not None:
                try:
                    client.cancel(self.old_registration_id)
                except (LookupError_, ConnectionClosedError,
                        ConnectionRefusedError_):
                    pass  # stale registration will age out by lease
            attributes = dict(self.service_item.attributes)
            attributes["epoch"] = new_epoch
            reply = client.register(
                ServiceItem(
                    self.service_item.service_id,
                    self.standby.address,
                    attributes,
                ),
                lease_ms=FOREVER,
            )
            self.old_registration_id = reply["registration_id"]
        finally:
            client.close()
        if self.metrics is not None:
            self.metrics.event(
                "failover-complete", host=self.host,
                address=str(self.standby.address),
                lsn=self.standby.space.wal.last_lsn,
                epoch=new_epoch,
            )
        self.runtime.spawn(
            lambda: self._fence_and_rejoin(old_primary, new_epoch),
            name=f"space-fencer:{self.host}",
        )

    # -- fencing the deposed primary ----------------------------------------

    def _fence_and_rejoin(self, old_primary: Address, epoch: int) -> None:
        """Demote the old primary, then re-arm supervision.

        The fence order is retried every heartbeat until the old primary
        is *known harmless*: either it acks the demotion (a paused or
        partitioned primary receives the order the moment the fault
        heals), or it refuses connections outright — dead, or already
        demoted-and-stopped with its ack lost to an asymmetric cut.
        Either way no stale commit can happen afterwards, so the deposed
        machine rejoins as a hot standby doing a full anti-entropy
        resync from the new primary (its own log may hold
        uncommitted-elsewhere old-epoch state, which the fresh replica
        simply never sees), and the watch loop restarts so a later
        failure of the *new* primary promotes the rejoined standby.
        """
        while self._running:
            status = self._send_fence(old_primary, epoch)
            if status in ("acked", "dead"):
                break
            self.runtime.sleep(self.heartbeat_ms)
        if not self._running:
            return
        if self.metrics is not None:
            self.metrics.event("primary-fenced", host=self.host,
                               address=str(old_primary), epoch=epoch)
        rejoined = HotStandby(
            self.runtime, self.network, old_primary.host,
            primary_address=self.standby.address,
            address=old_primary,
            name=self.standby.space.name,
            snapshot_every=self.standby.space.snapshot_every,
            metrics=self.metrics,
            sync_replication=self.standby.sync_replication,
            repl_ack_timeout_ms=self.standby.repl_ack_timeout_ms,
            codec=self.standby.space.codec,
        )
        rejoined.start()
        self._spawned_standbys.append(rejoined)
        if self.metrics is not None:
            self.metrics.event("standby-rejoining", host=self.host,
                               address=str(old_primary), epoch=epoch)
        # Re-arm: supervise the promoted primary with the rejoined
        # standby as its successor (a second failover serves at the old
        # primary's address under epoch+1).  ``failed_over`` stays True —
        # it records that a failover *happened*; the watch loop keys off
        # the failover generation instead.
        self.primary_address = self.standby.address
        self.standby = rejoined
        if self.server is not None:
            self.server.grant_lease(self.lease_ms)
            self._lease_valid_until = self.runtime.now() + self.lease_ms
        self.runtime.spawn(self._watch, name=f"space-supervisor:{self.host}")

    def _send_fence(self, address: Address, epoch: int) -> str:
        """One fence round trip.

        ``"acked"`` — the server admitted demotion; ``"dead"`` — nothing
        listens there (crashed, or fenced earlier and stopped);
        ``"retry"`` — unreachable or unresponsive, try again.
        """
        try:
            conn = self.network.connect(self.host, address)
        except ConnectionRefusedError_:
            # Refused while a partition stands between us could mean the
            # primary is alive behind the cut — keep retrying until the
            # heal tells us which.  (A real deployment would consult a
            # quorum or fencing store here; the simulation asks the
            # network, which is the same oracle.)
            if (self.network.is_partitioned(self.host, address.host)
                    or self.network.is_partitioned(address.host, self.host)):
                return "retry"
            return "dead"
        except NetworkError:
            return "retry"
        try:
            conn.send({"op": "fence", "args": {"epoch": epoch}})
            reply = conn.receive(timeout_ms=self.probe_timeout_ms)
            if (bool(reply) and bool(reply.get("ok"))
                    and bool(reply["value"].get("superseded"))):
                return "acked"
            return "retry"
        except (ConnectionClosedError, NetworkError):
            return "retry"
        finally:
            conn.close()
