"""Failover plumbing: locate the space via Jini, promote the standby.

:class:`JiniSpaceLocator` is the client half — a callable handed to
:class:`~repro.tuplespace.proxy.SpaceProxy` as its ``locator`` so a
reconnect asks the lookup service *where the space lives now* instead of
hammering a dead address.

:class:`SpaceSupervisor` is the control half — it heartbeats the primary
:class:`~repro.tuplespace.proxy.SpaceServer` and, after ``max_misses``
consecutive missed probes, promotes the :class:`~repro.tuplespace.durable.HotStandby`,
cancels the primary's lookup registration and registers the standby's
address under the same service attributes.  From that point every
locator-equipped proxy re-discovers the new primary on its next
reconnect.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import (
    ConnectionClosedError,
    ConnectionRefusedError_,
    LookupError_,
    NetworkError,
)
from repro.jini.join import LookupClient
from repro.jini.lookup import ServiceItem
from repro.net.address import Address
from repro.net.network import Network
from repro.runtime.base import Runtime
from repro.tuplespace.durable import HotStandby
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.proxy import SpaceServer
from repro.tuplespace.transaction import TransactionManager

__all__ = ["JiniSpaceLocator", "SpaceSupervisor"]


class JiniSpaceLocator:
    """Resolve the space's current address through the lookup service.

    Returns the *newest* matching registration — after a failover both
    the stale primary item (until its cancel/lease-expiry lands) and the
    standby item may briefly coexist, and lookup returns registrations in
    insertion order.
    """

    def __init__(self, network: Network, host: str, registrar: Address,
                 query: dict[str, Any]) -> None:
        self.network = network
        self.host = host
        self.registrar = registrar
        self.query = query

    def __call__(self) -> Optional[Address]:
        client = LookupClient(self.network, self.host, self.registrar)
        try:
            items = client.lookup(self.query)
        finally:
            client.close()
        if not items:
            return None
        return items[-1].service


class SpaceSupervisor:
    """Promote the hot standby when the primary stops answering pings.

    Detection is deliberately dumb — ``max_misses`` consecutive failed
    probes at ``heartbeat_ms`` intervals — which makes the failover time
    a deterministic function of the fault time under simulation.
    """

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        host: str,
        standby: HotStandby,
        primary_address: Address,
        registrar: Address,
        service_item: ServiceItem,
        heartbeat_ms: float = 250.0,
        probe_timeout_ms: Optional[float] = None,
        max_misses: int = 3,
        old_registration_id: Optional[int] = None,
        metrics: Any = None,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.host = host
        self.standby = standby
        self.primary_address = primary_address
        self.registrar = registrar
        self.service_item = service_item
        self.heartbeat_ms = heartbeat_ms
        self.probe_timeout_ms = (
            probe_timeout_ms if probe_timeout_ms is not None else heartbeat_ms
        )
        self.max_misses = max_misses
        self.old_registration_id = old_registration_id
        self.metrics = metrics
        self.failed_over = False
        self.server: Optional[SpaceServer] = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.runtime.spawn(self._watch, name=f"space-supervisor:{self.host}")

    def stop(self) -> None:
        self._running = False

    # -- watchdog ------------------------------------------------------------

    def _watch(self) -> None:
        misses = 0
        while self._running and not self.failed_over:
            self.runtime.sleep(self.heartbeat_ms)
            if not self._running or self.failed_over:
                return
            if self._probe():
                misses = 0
                continue
            misses += 1
            if self.metrics is not None:
                self.metrics.event("primary-heartbeat-miss", misses=misses)
            if misses >= self.max_misses:
                self._failover()
                return

    def _probe(self) -> bool:
        """One ping round-trip to the primary; False on any failure."""
        try:
            conn = self.network.connect(self.host, self.primary_address)
        except (ConnectionRefusedError_, NetworkError):
            return False
        try:
            conn.send({"op": "ping", "args": {}})
            reply = conn.receive(timeout_ms=self.probe_timeout_ms)
            return bool(reply) and bool(reply.get("ok"))
        except (ConnectionClosedError, NetworkError):
            return False
        finally:
            conn.close()

    def _failover(self) -> None:
        """The promotion sequence: serve the replica, fix the registry."""
        self.failed_over = True
        self.server = self.standby.promote(
            TransactionManager(self.runtime, metrics=self.metrics)
        )
        client = LookupClient(self.network, self.host, self.registrar)
        try:
            if self.old_registration_id is not None:
                try:
                    client.cancel(self.old_registration_id)
                except (LookupError_, ConnectionClosedError,
                        ConnectionRefusedError_):
                    pass  # stale registration will age out by lease
            client.register(
                ServiceItem(
                    self.service_item.service_id,
                    self.standby.address,
                    dict(self.service_item.attributes),
                ),
                lease_ms=FOREVER,
            )
        finally:
            client.close()
        if self.metrics is not None:
            self.metrics.event(
                "failover-complete", host=self.host,
                address=str(self.standby.address),
                lsn=self.standby.space.wal.last_lsn,
            )
