"""JavaSpaces-style tuple space.

Faithful to the JavaSpaces programming model the paper builds on:

* entries are typed objects with public fields; *templates* are entries of
  the same (or a super-) class whose ``None`` fields are wildcards;
* operations: ``write`` (returns a :class:`Lease`), ``read``/``take``
  (blocking with timeout), ``read_if_exists``/``take_if_exists``,
  ``notify`` (remote events), ``snapshot``;
* ``write``/``read``/``take`` may run under a :class:`Transaction` with
  ACID semantics — a partial failure either completes or rolls back,
  exactly the property the paper leans on for fault tolerance;
* entries are serialized on write and deserialized on every read/take, so
  callers always receive isolated copies (the JavaSpaces proxy behaviour).

:class:`SpaceServer`/:class:`SpaceProxy` expose the space over the
simulated network so workers on other nodes pay real (modelled) network
costs per operation.
"""

from repro.tuplespace.entry import Entry, entry_fields, matches
from repro.tuplespace.lease import Lease, FOREVER
from repro.tuplespace.events import EventRegistration, RemoteEvent
from repro.tuplespace.transaction import Transaction, TransactionManager
from repro.tuplespace.space import JavaSpace
from repro.tuplespace.proxy import RecoveryPolicy, SpaceProxy, SpaceServer
from repro.tuplespace.wal import CommitRecord, FileWalStore, WalStore, WriteAheadLog
from repro.tuplespace.durable import DurableSpace, HotStandby
from repro.tuplespace.failover import JiniSpaceLocator, SpaceSupervisor
from repro.tuplespace.sharding import (
    HashRing,
    ShardRouter,
    ShardedBatch,
    ShardedTransaction,
    stable_hash,
)

__all__ = [
    "RecoveryPolicy",
    "Entry",
    "entry_fields",
    "matches",
    "Lease",
    "FOREVER",
    "RemoteEvent",
    "EventRegistration",
    "Transaction",
    "TransactionManager",
    "JavaSpace",
    "SpaceServer",
    "SpaceProxy",
    "CommitRecord",
    "WalStore",
    "FileWalStore",
    "WriteAheadLog",
    "DurableSpace",
    "HotStandby",
    "JiniSpaceLocator",
    "SpaceSupervisor",
    "HashRing",
    "ShardRouter",
    "ShardedBatch",
    "ShardedTransaction",
    "stable_hash",
]
