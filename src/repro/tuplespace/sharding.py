"""Sharded tuple space: consistent-hash partitioning with scatter-gather.

One :class:`~repro.tuplespace.proxy.SpaceServer` is a throughput ceiling:
every entry, every drain reply, every transaction crosses one host's
link.  This module splits the space into N independent shards and puts a
:class:`ShardRouter` — a drop-in for :class:`SpaceProxy` — in front:

* **Routing rule.**  An entry (or template) with a non-``None``
  :meth:`~repro.tuplespace.entry.Entry.shard_key` routes to
  ``ring.shard_for(key)``.  An *entry* whose key is ``None`` is written
  to its class's home shard (``shard_for("class:<name>")``); a *template*
  whose key is ``None`` is a wildcard and scatter-gathers.
* **Scatter-gather.**  Wildcard ``take``/``read`` scan the shards
  non-blockingly from a sticky per-client cursor, first match wins; when
  every shard is empty and wait budget remains, the router camps a
  blocking non-consuming ``read`` on a rotating shard for one
  ``scatter_block_ms`` quantum, then rescans.  ``take_multiple`` merges
  across shards up to its cap per scan round; ``contents``/``count``
  merge/sum in shard-index order.  Every order is a pure function of the
  template and cursor, so runs replay deterministically.
* **Shard-local transactions.**  A :class:`ShardedTransaction` is born
  unbound and pins itself to the shard of its first operation; all later
  operations under it must hit the same shard (cross-shard use raises
  :class:`~repro.errors.SpaceError`), so commit/abort stay single-shard.
  A wildcard take under an unbound transaction probes for a non-empty
  shard first and binds there; if the bound shard runs dry the router
  aborts and transparently rebinds — the holder of the handle never sees
  the move.
* **Batched prefetch.**  :class:`ShardedBatch` mirrors
  :class:`~repro.tuplespace.proxy.ProxyBatch`: consecutive same-shard
  operations ride one pipelined RPC, and the worker's steady-state
  write_all + commit + txn_create + take_multiple cycle collapses to a
  single RPC to the hot shard once the router has found where tasks live.

With a single shard the router degenerates to a pass-through (every key
routes to shard 0 with the original blocking timeouts), so ``shards=1``
reproduces the unsharded wire behaviour.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from hashlib import blake2b
from typing import Any, Callable, Optional

from repro.errors import AdmissionError, SpaceError
from repro.net.address import Address
from repro.net.network import Network
from repro.tuplespace.entry import Entry
from repro.tuplespace.lease import FOREVER
from repro.tuplespace.proxy import (
    ProxyBatch,
    RecoveryPolicy,
    RemoteTransaction,
    SpaceProxy,
)

__all__ = ["stable_hash", "HashRing", "ShardRouter", "ShardedTransaction",
           "ShardedBatch"]


def stable_hash(key: Any) -> int:
    """Process-independent 64-bit hash of a routable key.

    Python's builtin ``hash`` is salted per process, so it would route
    the same ``task_id`` to different shards on master and workers.  The
    key is type-tagged before hashing so ``1`` and ``"1"`` cannot
    collide by repr.
    """
    data = f"{type(key).__name__}:{key!r}".encode()
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring over ``shards`` with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key belongs to
    the first point clockwise of its hash.  Adding shard ``N`` only adds
    points, so keys either stay put or move *to the new shard* — the
    remapped fraction concentrates near ``1/(N+1)``.
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points = sorted(
            (stable_hash(f"shard:{s}:vnode:{v}"), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: Any) -> int:
        if self.shards == 1:
            return 0
        index = bisect_right(self._hashes, stable_hash(key)) % len(self._hashes)
        return self._owners[index]


#: ``txn_id`` of a transaction that has no server-side counterpart yet.
#: A dict on purpose: callers that guard "never created server-side" with
#: ``isinstance(txn.txn_id, dict)`` (the worker's batch carry does) treat
#: an unbound sharded transaction exactly like an unflushed batch_ref.
_UNBOUND = {"unbound": True}


class ShardedTransaction:
    """A lazily bound, shard-pinned transaction handle.

    Matches the :class:`~repro.tuplespace.proxy.RemoteTransaction`
    surface (``txn_id``/``completed``/``commit``/``abort``/context
    manager) so worker and master code cannot tell the difference.
    """

    def __init__(self, router: "ShardRouter", timeout_ms: float = FOREVER) -> None:
        self._router = router
        self._timeout_ms = timeout_ms
        self._remote: Optional[RemoteTransaction] = None
        self.shard: Optional[int] = None
        self.completed = False

    @property
    def txn_id(self) -> Any:
        return self._remote.txn_id if self._remote is not None else dict(_UNBOUND)

    def _bind(self, shard: int) -> RemoteTransaction:
        """Pin to ``shard`` (creating the server transaction on demand)."""
        if self._remote is not None:
            if self.shard != shard:
                raise SpaceError(
                    f"cross-shard operation under a shard-local transaction: "
                    f"bound to shard {self.shard}, operation routes to "
                    f"shard {shard}")
            return self._remote
        self._remote = self._router._proxies[shard].transaction(self._timeout_ms)
        self.shard = shard
        return self._remote

    def _adopt(self, shard: int, remote: RemoteTransaction) -> None:
        """Bind to a transaction created inside a pipelined batch."""
        self._remote = remote
        self.shard = shard

    def _unbind_quietly(self) -> None:
        """Abort the current server transaction (it took nothing — the
        probe loop only rebinds after an empty take) and return to the
        unbound state so the next attempt can pin a different shard."""
        remote, self._remote, self.shard = self._remote, None, None
        if remote is None or remote.completed:
            return
        try:
            remote.abort()
        except SpaceError:
            pass  # expired server-side; nothing held either way

    def commit(self) -> None:
        if self._remote is not None and not self._remote.completed:
            self._remote.commit()
        self.completed = True

    def abort(self) -> None:
        if self._remote is not None and not self._remote.completed:
            self._remote.abort()
        self.completed = True

    def __enter__(self) -> "ShardedTransaction":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if self.completed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class ShardedBatch:
    """Pipelined batch over a :class:`ShardRouter`.

    Mirrors :class:`~repro.tuplespace.proxy.ProxyBatch`: record
    operations, then :meth:`flush` returns per-op values in order and
    re-raises the first failure.  Consecutive operations that resolve to
    the same shard ride one :class:`ProxyBatch` RPC; wildcard operations
    execute as scatter-gather at their position in the sequence.

    A trailing ``txn_create`` + wildcard ``take``/``take_multiple`` pair
    (the worker's prefetch) is executed as one unit through the router's
    probe/bind loop — and when the probe's first attempt lands on the
    same shard as the preceding run (the steady-state hot path), the
    whole cycle is a single RPC.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self._ops: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._ops)

    def _add(self, op: dict[str, Any]) -> int:
        self._ops.append(op)
        return len(self._ops) - 1

    # -- the batchable operation set ----------------------------------------

    def write(self, entry: Entry, txn: Any = None,
              lease_ms: float = FOREVER, requeue: bool = False) -> int:
        return self._add({"kind": "write", "entry": entry, "txn": txn,
                          "lease_ms": lease_ms, "requeue": requeue})

    def write_all(self, entries: list[Entry], txn: Any = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        return self._add({"kind": "write_all", "entries": list(entries),
                          "txn": txn, "lease_ms": lease_ms,
                          "requeue": requeue})

    def read(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        return self._add({"kind": "read", "template": template, "txn": txn,
                          "timeout_ms": timeout_ms})

    def take(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = 0.0) -> int:
        return self._add({"kind": "take", "template": template, "txn": txn,
                          "timeout_ms": timeout_ms})

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Any = None,
                      timeout_ms: Optional[float] = 0.0) -> int:
        return self._add({"kind": "take_multiple", "template": template,
                          "max_entries": max_entries, "txn": txn,
                          "timeout_ms": timeout_ms})

    def count(self, template: Entry) -> int:
        return self._add({"kind": "count", "template": template, "txn": None})

    def txn_create(self, timeout_ms: float = FOREVER) -> ShardedTransaction:
        """Open a transaction inside this batch.

        The handle stays unbound until an operation pins it to a shard;
        when its first use is the trailing prefetch take, creation rides
        that take's RPC (the ``batch_ref`` trick, per shard)."""
        txn = ShardedTransaction(self._router, timeout_ms)
        self._add({"kind": "txn_create", "txn": txn,
                   "timeout_ms": timeout_ms})
        return txn

    def commit(self, txn: ShardedTransaction) -> int:
        return self._add({"kind": "commit", "txn": txn})

    def abort(self, txn: ShardedTransaction) -> int:
        return self._add({"kind": "abort", "txn": txn})

    # -- execution -----------------------------------------------------------

    def flush(self) -> list[Any]:
        ops, self._ops = self._ops, []
        if not ops:
            return []
        results: list[Any] = [None] * len(ops)
        tail_start = self._split_tail(ops)
        pending = self._run_head(ops[:tail_start], results)
        if tail_start < len(ops):
            self._run_tail(ops, tail_start, results, pending)
        elif pending is not None:
            self._flush_run(pending, results)
        return results

    def _split_tail(self, ops: list[dict[str, Any]]) -> int:
        """Index where the trailing prefetch group starts (or ``len``).

        The group is a final *wildcard* ``take``/``take_multiple`` under
        an unbound :class:`ShardedTransaction`, plus — if adjacent — the
        ``txn_create`` that minted it."""
        last = ops[-1]
        if last["kind"] not in ("take", "take_multiple"):
            return len(ops)
        txn = last.get("txn")
        if not isinstance(txn, ShardedTransaction) or txn._remote is not None:
            return len(ops)
        if self._router._template_shard(last["template"]) is not None:
            return len(ops)
        if (len(ops) >= 2 and ops[-2]["kind"] == "txn_create"
                and ops[-2]["txn"] is txn):
            return len(ops) - 2
        return len(ops) - 1

    def _run_head(self, head: list[dict[str, Any]],
                  results: list[Any]) -> Optional[tuple]:
        """Execute the head; return the final unflushed same-shard run so
        the tail can try to piggyback on its RPC."""
        router = self._router
        pending: Optional[tuple] = None  # (shard, ProxyBatch, [(op_i, pb_i, op)])
        for index, op in enumerate(head):
            shard = self._resolve_shard(op)
            if shard is None:
                if self._is_local_noop(op):
                    results[index] = self._scatter_op(op)
                    continue
                if pending is not None:
                    self._flush_run(pending, results)
                    pending = None
                results[index] = self._scatter_op(op)
                continue
            if pending is not None and pending[0] != shard:
                self._flush_run(pending, results)
                pending = None
            if pending is None:
                pending = (shard, router._proxies[shard].batch(), [])
            pb_index = self._emit(pending[1], op, shard)
            pending[2].append((index, pb_index, op))
        return pending

    def _resolve_shard(self, op: dict[str, Any]) -> Optional[int]:
        """The shard a head operation belongs to (``None`` = scatter)."""
        router = self._router
        kind = op["kind"]
        txn = op.get("txn")
        if kind == "write":
            return router._entry_shard(op["entry"])
        if kind == "write_all":
            shards = {router._entry_shard(e) for e in op["entries"]}
            if len(shards) == 1:
                return shards.pop()
            if txn is not None:
                raise SpaceError(
                    "cross-shard write_all under a shard-local transaction")
            return None
        if kind in ("read", "take", "take_multiple"):
            shard = router._template_shard(op["template"])
            if shard is not None:
                return shard
            if isinstance(txn, ShardedTransaction) and txn._remote is not None:
                return txn.shard  # wildcard under a pinned txn stays local
            return None
        if kind in ("commit", "abort"):
            if isinstance(txn, ShardedTransaction):
                # Unbound: never materialized server-side, completing it
                # is a client-local no-op (handled by _scatter_op).
                return txn.shard if txn._remote is not None else None
            return None
        if kind == "txn_create":
            # Creation is lazy — the first operation that uses the handle
            # pins it.  Nothing to send here.
            return None
        raise SpaceError(f"unknown batched operation {kind!r}")

    @staticmethod
    def _is_local_noop(op: dict[str, Any]) -> bool:
        """True for operations with no server-side work: deferred
        txn_create, and commit/abort of a still-unbound transaction.
        These need no sequencing against a pending same-shard run."""
        kind = op["kind"]
        if kind == "txn_create":
            return True
        txn = op.get("txn")
        return (kind in ("commit", "abort")
                and isinstance(txn, ShardedTransaction)
                and txn._remote is None)

    def _scatter_op(self, op: dict[str, Any]) -> Any:
        """Execute one non-routable operation at its sequence position."""
        router = self._router
        kind = op["kind"]
        txn = op.get("txn")
        if kind == "txn_create":
            return None  # bound (and created) on first use
        if kind in ("commit", "abort"):
            if txn is not None:
                (txn.commit if kind == "commit" else txn.abort)()
            return None
        if kind == "write_all":
            return {"count": router.write_all(op["entries"], txn=txn,
                                              lease_ms=op["lease_ms"],
                                              requeue=op.get("requeue", False))}
        if kind == "read":
            return router.read(op["template"], txn=txn,
                               timeout_ms=op["timeout_ms"])
        if kind == "take":
            return router.take(op["template"], txn=txn,
                               timeout_ms=op["timeout_ms"])
        if kind == "take_multiple":
            return router.take_multiple(op["template"], op["max_entries"],
                                        txn=txn, timeout_ms=op["timeout_ms"])
        raise SpaceError(f"unknown batched operation {kind!r}")

    def _emit(self, pb: ProxyBatch, op: dict[str, Any], shard: int) -> int:
        """Append one resolved operation to a per-shard pipeline."""
        kind = op["kind"]
        txn = op.get("txn")
        remote = None
        if isinstance(txn, ShardedTransaction):
            remote = txn._bind(shard)
        elif txn is not None:
            remote = txn
        if kind == "write":
            return pb.write(op["entry"], txn=remote, lease_ms=op["lease_ms"],
                            requeue=op.get("requeue", False))
        if kind == "write_all":
            return pb.write_all(op["entries"], txn=remote,
                                lease_ms=op["lease_ms"],
                                requeue=op.get("requeue", False))
        if kind == "read":
            return pb.read(op["template"], txn=remote,
                           timeout_ms=op["timeout_ms"])
        if kind == "take":
            return pb.take(op["template"], txn=remote,
                           timeout_ms=op["timeout_ms"])
        if kind == "take_multiple":
            return pb.take_multiple(op["template"], op["max_entries"],
                                    txn=remote, timeout_ms=op["timeout_ms"])
        if kind == "commit":
            return pb.commit(remote)
        if kind == "abort":
            return pb.abort(remote)
        raise SpaceError(f"unknown batched operation {kind!r}")

    def _flush_run(self, pending: tuple, results: list[Any]) -> None:
        shard, pb, mapping = pending
        values = pb.flush()
        for op_index, pb_index, op in mapping:
            results[op_index] = values[pb_index]
            txn = op.get("txn")
            if op["kind"] in ("commit", "abort") and \
                    isinstance(txn, ShardedTransaction):
                txn.completed = True

    def _run_tail(self, ops: list[dict[str, Any]], tail_start: int,
                  results: list[Any], pending: Optional[tuple]) -> None:
        take_op = ops[-1]
        txn: ShardedTransaction = take_op["txn"]
        max_entries = take_op.get("max_entries", 1)
        got = self._router._prefetch_under_txn(
            take_op["template"], max_entries, txn,
            timeout_ms=take_op["timeout_ms"],
            multiple=take_op["kind"] == "take_multiple",
            piggyback=pending, piggyback_results=results,
        )
        if tail_start == len(ops) - 2:  # txn_create rode along
            results[-2] = txn.txn_id if txn._remote is not None else None
        results[-1] = got


class ShardRouter:
    """Client stub over N shard servers with the :class:`SpaceProxy` API.

    One router per client process; each shard gets its own lazily
    connected :class:`SpaceProxy` (so per-shard failover re-discovery
    works exactly as for the single-space proxy).  The router is a
    drop-in anywhere a ``SpaceProxy`` is used — including
    ``getattr(space, "batch")`` duck-typing in the master.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        addresses: list[Address],
        ring: Optional[HashRing] = None,
        recovery: Optional[RecoveryPolicy] = None,
        rng: Any = None,
        metrics: Any = None,
        locators: Optional[list[Optional[Callable[[], Optional[Address]]]]] = None,
        tracer: Any = None,
        scatter_block_ms: float = 250.0,
        codec: str = "pickle",
    ) -> None:
        if not addresses:
            raise ValueError("ShardRouter needs at least one shard address")
        self.ring = ring if ring is not None else HashRing(len(addresses))
        if self.ring.shards != len(addresses):
            raise ValueError(
                f"ring has {self.ring.shards} shards but "
                f"{len(addresses)} addresses were given")
        self.network = network
        self.host = host
        self.runtime = network.runtime
        self.scatter_block_ms = scatter_block_ms
        self.codec = codec
        #: For "scatter" envelope spans around wildcard fan-outs (the
        #: doctor intersects them with rpc.* spans to cost fan-out time).
        self.tracer = tracer
        self._proxies = [
            SpaceProxy(network, host, address, recovery=recovery, rng=rng,
                       metrics=metrics,
                       locator=locators[i] if locators else None,
                       tracer=tracer, codec=codec)
            for i, address in enumerate(addresses)
        ]
        #: Dedicated camp connections (lazily built): a camp is a blocking
        #: ``read`` issued on *every* shard concurrently, and a proxy's
        #: socket is strict request-reply, so campers must never share a
        #: socket with the fan-out RPCs (or with a lingering camper from
        #: an earlier round — hence the busy mask).
        self._camp_proxy_args = dict(recovery=recovery, rng=rng,
                                     metrics=metrics, tracer=tracer,
                                     codec=codec)
        self._camp_addresses = list(addresses)
        self._camp_locators = locators
        self._camp_proxies: Optional[list[SpaceProxy]] = None
        self._camp_busy: list[bool] = [False] * len(addresses)
        self._camp_live = 0
        self._camp_hits = 0
        self._camp_hit_shard: Optional[int] = None
        self._camp_cond = self.runtime.condition()
        #: Sticky scatter cursor: where wildcard scans start.  Seeded per
        #: client host so workers spread their first probes, but stable
        #: across runs (determinism).
        self._cursor = stable_hash(f"cursor:{host}") % len(self._proxies)
        #: True after a wildcard take found entries at the cursor shard:
        #: the next prefetch goes straight there (steady state = 1 RPC).
        self._hot = False

    # -- client-health surface (console reads these off the worker proxy) ----

    @property
    def shards(self) -> int:
        return len(self._proxies)

    @property
    def reconnects(self) -> int:
        return sum(p.reconnects for p in self._proxies)

    @property
    def retries(self) -> int:
        return sum(p.retries for p in self._proxies)

    def fail(self) -> None:
        for proxy in self._proxies:
            proxy.fail()
        for proxy in self._camp_proxies or []:
            proxy.fail()

    def close(self) -> None:
        for proxy in self._proxies:
            proxy.close()
        for proxy in self._camp_proxies or []:
            proxy.close()

    def ping(self) -> bool:
        return all(proxy.ping() for proxy in self._proxies)

    # -- routing -------------------------------------------------------------

    def _entry_shard(self, entry: Entry) -> int:
        """Where an entry is written.  ``shard_key() is None`` falls back
        to the class's home shard — such entries are findable only by
        wildcard templates (documented invariant, DESIGN.md §10)."""
        key = entry.shard_key() if isinstance(entry, Entry) else None
        if key is None:
            return self.ring.shard_for(f"class:{type(entry).__name__}")
        return self.ring.shard_for(key)

    def _template_shard(self, template: Entry) -> Optional[int]:
        """Where a template routes; ``None`` means scatter-gather."""
        if self.ring.shards == 1:
            return 0
        key = template.shard_key() if isinstance(template, Entry) else None
        return None if key is None else self.ring.shard_for(key)

    def _scan_order(self) -> list[int]:
        n = len(self._proxies)
        start = self._cursor % n
        return [(start + i) % n for i in range(n)]

    def _txn_for(self, txn: Any, shard: int) -> Optional[RemoteTransaction]:
        if txn is None:
            return None
        if isinstance(txn, ShardedTransaction):
            return txn._bind(shard)
        return txn  # a raw RemoteTransaction: the caller owns its shard

    # -- JavaSpace API ---------------------------------------------------------

    def write(self, entry: Entry, txn: Any = None,
              lease_ms: float = FOREVER, requeue: bool = False) -> dict[str, Any]:
        shard = self._entry_shard(entry)
        return self._proxies[shard].write(entry, txn=self._txn_for(txn, shard),
                                          lease_ms=lease_ms, requeue=requeue)

    def write_all(self, entries: list[Entry], txn: Any = None,
                  lease_ms: float = FOREVER, requeue: bool = False) -> int:
        if not entries:
            return 0
        groups: dict[int, list[Entry]] = {}
        for entry in entries:
            groups.setdefault(self._entry_shard(entry), []).append(entry)
        if txn is not None and len(groups) > 1:
            raise SpaceError(
                "cross-shard write_all under a shard-local transaction")
        if len(groups) == 1 or txn is not None:
            total = 0
            for shard in sorted(groups):
                total += self._proxies[shard].write_all(
                    groups[shard], txn=self._txn_for(txn, shard),
                    lease_ms=lease_ms, requeue=requeue)
            return total
        # Untransacted bulk write: one write_all per touched shard, all in
        # flight at once (seeding a large job shouldn't pay one round trip
        # per shard in series).  Each shard's admission check is
        # pre-dispatch-atomic for *its* group, but the scatter as a whole
        # is not: when one shard rejects after others admitted, the
        # surfaced AdmissionError names the entries that landed — blind
        # retry of the full list would duplicate them (and the history
        # would wrongly swear they never existed).
        shards = sorted(groups)
        outcomes = self._fan_out_outcomes(
            shards,
            lambda proxy, shard: proxy.write_all(groups[shard],
                                                 lease_ms=lease_ms,
                                                 requeue=requeue))
        failures = [value for (status, value) in outcomes if status == "err"]
        if not failures:
            return sum(value for _, value in outcomes)
        for exc in failures:
            if not isinstance(exc, AdmissionError):
                raise exc  # an indeterminate outcome trumps clean rejections
        exc = failures[0]
        exc.admitted_entries = tuple(
            entry
            for shard, (status, _value) in zip(shards, outcomes)
            if status == "ok"
            for entry in groups[shard])
        raise exc

    def read(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        shard = self._route_for_acquire(template, txn)
        if shard is not None:
            return self._proxies[shard].read(
                template, txn=self._txn_for(txn, shard), timeout_ms=timeout_ms)
        return self._scatter_single(template, txn, timeout_ms, take=False)

    def take(self, template: Entry, txn: Any = None,
             timeout_ms: Optional[float] = None) -> Optional[Entry]:
        shard = self._route_for_acquire(template, txn)
        if shard is not None:
            return self._proxies[shard].take(
                template, txn=self._txn_for(txn, shard), timeout_ms=timeout_ms)
        if isinstance(txn, ShardedTransaction):
            got = self._prefetch_under_txn(template, 1, txn,
                                           timeout_ms=timeout_ms,
                                           multiple=False)
            return got
        return self._scatter_single(template, txn, timeout_ms, take=True)

    def read_if_exists(self, template: Entry, txn: Any = None):
        return self.read(template, txn, timeout_ms=0.0)

    def take_if_exists(self, template: Entry, txn: Any = None):
        return self.take(template, txn, timeout_ms=0.0)

    def take_multiple(self, template: Entry, max_entries: int,
                      txn: Any = None,
                      timeout_ms: Optional[float] = None) -> list[Entry]:
        shard = self._route_for_acquire(template, txn)
        if shard is not None:
            return self._proxies[shard].take_multiple(
                template, max_entries, txn=self._txn_for(txn, shard),
                timeout_ms=timeout_ms)
        if isinstance(txn, ShardedTransaction):
            return self._prefetch_under_txn(template, max_entries, txn,
                                            timeout_ms=timeout_ms,
                                            multiple=True)
        return self._scatter_multiple(template, max_entries, txn, timeout_ms)

    def count(self, template: Entry, txn: Any = None) -> int:
        shard = self._template_shard(template)
        if shard is not None:
            return self._proxies[shard].count(template)
        return sum(self._fan_out(
            lambda proxy, _i: proxy.count(template)))

    def contents(self, template: Entry, txn: Any = None) -> list[Entry]:
        shard = self._route_for_acquire(template, txn)
        if shard is not None:
            return self._proxies[shard].contents(
                template, txn=self._txn_for(txn, shard))
        merged: list[Entry] = []
        # Concurrent per-shard RPCs, merged in shard-index order: the
        # reply payloads leave N different hosts in parallel, and the
        # deterministic merge keeps replays byte-identical.
        for chunk in self._fan_out(
                lambda proxy, _i: proxy.contents(template)):
            merged.extend(chunk)
        return merged

    def transaction(self, timeout_ms: float = FOREVER) -> ShardedTransaction:
        return ShardedTransaction(self, timeout_ms)

    def batch(self) -> ShardedBatch:
        return ShardedBatch(self)

    def notify(self, template: Entry, listener: Callable[..., Any],
               lease_ms: float = FOREVER, runtime: Any = None) -> list[int]:
        """Register on every shard (a match may land anywhere); returns
        the per-shard registration ids in shard-index order."""
        return [proxy.notify(template, listener, lease_ms=lease_ms,
                             runtime=runtime)
                for proxy in self._proxies]

    # -- scatter-gather internals ---------------------------------------------

    def _fan_out(self, op: Callable[[SpaceProxy, int], Any]) -> list[Any]:
        """Run ``op(proxy, shard_index)`` against every shard concurrently.

        This is the "gather" in scatter-gather: one runtime process per
        shard issues the RPC, so N reply payloads stream off N hosts'
        egress links in parallel instead of serializing through a
        sequential scan.  Results come back in shard-index order; the
        first failing shard's error (again in shard order) is re-raised,
        so outcomes are deterministic.  Safe because each shard has its
        own proxy/connection — no two concurrent ops share a socket.
        """
        return self._fan_out_over(range(len(self._proxies)), op)

    def _fan_out_over(self, shards: Any,
                      op: Callable[[SpaceProxy, int], Any]) -> list[Any]:
        """As :meth:`_fan_out`, over an explicit subset of shard indices;
        results align with the given order."""
        outcomes = self._fan_out_outcomes(shards, op)
        for status, value in outcomes:
            if status == "err":
                raise value
        return [value for _, value in outcomes]

    def _fan_out_outcomes(
        self, shards: Any,
        op: Callable[[SpaceProxy, int], Any]) -> list[tuple[str, Any]]:
        """Concurrent per-shard calls, returning every shard's outcome as
        ``("ok", value)`` or ``("err", exception)`` instead of raising —
        callers that need partial-failure semantics (scatter write_all
        under admission control) inspect the full list."""
        shards = list(shards)
        proxies = self._proxies
        if len(shards) == 1:
            try:
                return [("ok", op(proxies[shards[0]], shards[0]))]
            except Exception as exc:  # aligned with the fan-out contract
                return [("err", exc)]
        results: list[Any] = [None] * len(shards)
        remaining = [len(shards)]
        cond = self.runtime.condition()

        def call(slot: int, index: int) -> None:
            try:
                results[slot] = ("ok", op(proxies[index], index))
            except BaseException as exc:  # re-raised on the caller below
                results[slot] = ("err", exc)
            finally:
                with cond:
                    remaining[0] -= 1
                    cond.notify_all()

        for slot, index in enumerate(shards):
            self.runtime.spawn(lambda s=slot, i=index: call(s, i),
                               name=f"scatter:{self.host}:{index}")
        with cond:
            while remaining[0] > 0:
                cond.wait()
        return results

    def _route_for_acquire(self, template: Entry, txn: Any) -> Optional[int]:
        """Shard for a read/take/contents — the template's shard, else the
        transaction's pin (wildcard ops under a pinned txn stay local)."""
        shard = self._template_shard(template)
        if shard is not None:
            return shard
        if isinstance(txn, ShardedTransaction) and txn._remote is not None:
            return txn.shard
        return None

    def _deadline(self, timeout_ms: Optional[float]) -> Optional[float]:
        return None if timeout_ms is None else self.runtime.now() + timeout_ms

    def _expired(self, deadline: Optional[float]) -> bool:
        return deadline is not None and self.runtime.now() >= deadline

    def _ensure_campers(self) -> list[SpaceProxy]:
        if self._camp_proxies is None:
            locators = self._camp_locators
            self._camp_proxies = [
                SpaceProxy(self.network, self.host, address,
                           locator=locators[i] if locators else None,
                           **self._camp_proxy_args)
                for i, address in enumerate(self._camp_addresses)
            ]
        return self._camp_proxies

    def _camp(self, template: Entry, deadline: Optional[float]) -> Optional[int]:
        """Block one quantum until a match appears on *any* shard.

        One non-consuming blocking ``read`` per shard, each on its
        dedicated camp connection; the first camper to see a match wakes
        the caller immediately.  Campers still waiting when that happens
        keep running in the background and release their sockets when
        their quantum lapses — the busy mask keeps the next round off
        them (a lingering camper's hit still counts for whichever round
        is waiting).  Camping on one shard at a time would stall a
        scatter consumer for a whole quantum whenever entries land on a
        shard it is not watching — the failure mode that serializes the
        master's result drain.
        """
        budget = self.scatter_block_ms
        if deadline is not None:
            budget = min(budget, max(0.0, deadline - self.runtime.now()))
        if budget <= 0.0:
            return None
        n = len(self._proxies)
        if n == 1:
            if self._proxies[0].exists(template, timeout_ms=budget):
                return 0
            return None
        campers = self._ensure_campers()
        cond = self._camp_cond

        def camp(shard: int, quantum: float) -> None:
            try:
                hit = campers[shard].exists(template, timeout_ms=quantum)
            except Exception:
                # A dead shard mid-failover: camping is advisory — the
                # scan loop surfaces real errors; the proxy self-heals.
                hit = False
            with cond:
                self._camp_busy[shard] = False
                self._camp_live -= 1
                if hit:
                    self._camp_hits += 1
                    self._camp_hit_shard = shard
                cond.notify_all()

        with cond:
            start_hits = self._camp_hits
            for shard in range(n):
                if self._camp_busy[shard]:
                    continue  # lingering camper from an earlier round
                self._camp_busy[shard] = True
                self._camp_live += 1
                self.runtime.spawn(
                    lambda s=shard, q=budget: camp(s, q),
                    name=f"camp:{self.host}:{shard}",
                )
            while self._camp_hits == start_hits and self._camp_live > 0:
                if not cond.wait(timeout=budget):
                    break
            if self._camp_hits > start_hits:
                shard = self._camp_hit_shard
                self._cursor = shard if shard is not None else self._cursor
                return shard
            return None

    @contextmanager
    def _traced_scatter(self, op: str):
        """Envelope span around one wildcard scatter-gather call.

        The span covers the whole call — fan-out RPCs *and* camped
        waits — so the doctor intersects it with the rpc.* spans inside
        to attribute only the in-flight portion to the scatter phase.
        Purely observational: the disabled path yields immediately.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            yield
            return
        parent = tracer.current
        span = tracer.start(
            "scatter",
            trace_id=(parent.trace_id if parent is not None
                      else f"worker/{self.host}"),
            parent_id=parent.span_id if parent is not None else None,
            proc=self.host, op=op, shards=len(self._proxies))
        try:
            with tracer.activate(span):
                yield
        finally:
            span.end()

    def _scatter_single(self, template: Entry, txn: Any,
                        timeout_ms: Optional[float],
                        take: bool) -> Optional[Entry]:
        with self._traced_scatter("take" if take else "read"):
            return self._scatter_single_impl(template, txn, timeout_ms, take)

    def _scatter_single_impl(self, template: Entry, txn: Any,
                             timeout_ms: Optional[float], take: bool) -> Optional[Entry]:
        """Wildcard read/take without a sharded transaction: first match
        wins, scanning non-blockingly from the sticky cursor."""
        deadline = self._deadline(timeout_ms)
        while True:
            for shard in self._scan_order():
                proxy = self._proxies[shard]
                if take:
                    entry = proxy.take(template, txn=txn, timeout_ms=0.0)
                else:
                    entry = proxy.read(template, txn=txn, timeout_ms=0.0)
                if entry is not None:
                    self._cursor = shard
                    return entry
            if timeout_ms == 0.0 or self._expired(deadline):
                self._hot = False
                return None
            self._camp(template, deadline)

    def _scatter_multiple(self, template: Entry, max_entries: int, txn: Any,
                          timeout_ms: Optional[float]) -> list[Entry]:
        with self._traced_scatter("take_multiple"):
            return self._scatter_multiple_impl(template, max_entries, txn,
                                               timeout_ms)

    def _scatter_multiple_impl(self, template: Entry, max_entries: int,
                               txn: Any,
                               timeout_ms: Optional[float]) -> list[Entry]:
        """Wildcard take_multiple: gather from all shards per scan round.

        Each round is two parallel fan-outs: ``count`` to size per-shard
        quotas (so the round never takes more than ``max_entries`` in
        total), then ``take_multiple`` for the quotas.  A concurrent
        consumer can shrink a shard between the two — the round just
        returns fewer; a later round (or the caller's next call) picks up
        the rest.  When every shard is empty, camp-and-rescan as for the
        single-entry scatter.
        """
        if txn is not None:
            # A transaction pins one shard; a txn-scoped scatter would
            # have been routed by the caller.  Fall back to a sequential
            # scan so the transaction's proxy semantics hold.
            return self._scatter_multiple_seq(template, max_entries, txn,
                                              timeout_ms)
        deadline = self._deadline(timeout_ms)
        while True:
            counts = self._fan_out(lambda proxy, _i: proxy.count(template))
            # Round-robin quota allocation: spread the round's budget one
            # entry at a time over every shard that has matches.  Greedy
            # shard-order allocation would concentrate the round on the
            # first shards with entries and serialize the gather through
            # one or two hosts' egress links — defeating the fan-out.
            quotas = [0] * len(counts)
            budget = max_entries
            while budget > 0:
                granted = 0
                for shard, count in enumerate(counts):
                    if budget > 0 and quotas[shard] < count:
                        quotas[shard] += 1
                        budget -= 1
                        granted += 1
                if granted == 0:
                    break
            if any(quotas):
                chunks = self._fan_out_over(
                    [s for s, q in enumerate(quotas) if q > 0],
                    lambda proxy, i: proxy.take_multiple(
                        template, quotas[i], timeout_ms=0.0))
                got = [entry for chunk in chunks for entry in chunk]
                if got:
                    return got
            if timeout_ms == 0.0 or self._expired(deadline):
                self._hot = False
                return []
            self._camp(template, deadline)

    def _scatter_multiple_seq(self, template: Entry, max_entries: int,
                              txn: Any,
                              timeout_ms: Optional[float]) -> list[Entry]:
        deadline = self._deadline(timeout_ms)
        while True:
            got: list[Entry] = []
            for shard in self._scan_order():
                chunk = self._proxies[shard].take_multiple(
                    template, max_entries - len(got), txn=txn, timeout_ms=0.0)
                if chunk and not got:
                    self._cursor = shard
                got.extend(chunk)
                if len(got) >= max_entries:
                    break
            if got:
                return got
            if timeout_ms == 0.0 or self._expired(deadline):
                self._hot = False
                return []
            self._camp(template, deadline)

    def _probe(self, template: Entry,
               deadline: Optional[float]) -> Optional[int]:
        """Find a shard with at least one match, without consuming: scan
        ``read_if_exists`` from the cursor, then camp and rescan until a
        match or the deadline."""
        while True:
            for shard in self._scan_order():
                if self._proxies[shard].exists(template, timeout_ms=0.0):
                    return shard
            if self._expired(deadline):
                return None
            hit = self._camp(template, deadline)
            if hit is not None:
                return hit

    def _prefetch_under_txn(
        self,
        template: Entry,
        max_entries: int,
        txn: ShardedTransaction,
        timeout_ms: Optional[float],
        multiple: bool,
        piggyback: Optional[tuple] = None,
        piggyback_results: Optional[list[Any]] = None,
    ) -> Any:
        """Wildcard take under a shard-local transaction.

        Attempt cycle: pick a shard (the txn's pin, the hot cursor, a
        piggyback run's shard, or a probe hit), then issue txn_create (if
        unbound) + non-blocking take in ONE pipelined RPC there.  An
        empty take unbinds and re-probes so a worker is never stuck
        camped on a dry shard while tasks pile up on another — the
        rebind is invisible to the transaction's holder.

        ``piggyback`` is :class:`ShardedBatch`'s final unflushed
        same-shard run: when the first attempt lands on its shard, the
        prefetch rides that run's RPC (the steady-state single-RPC path).
        """
        deadline = self._deadline(timeout_ms)
        empty: Any = [] if multiple else None
        attempt_shard: Optional[int] = None
        if txn._remote is not None:
            attempt_shard = txn.shard
        elif self._hot:
            attempt_shard = self._cursor
        elif piggyback is not None:
            attempt_shard = piggyback[0]
        first = True
        while True:
            if attempt_shard is None:
                attempt_shard = self._probe(template, deadline)
                if attempt_shard is None:
                    self._hot = False
                    return empty
            if txn._remote is not None and txn.shard != attempt_shard:
                txn._unbind_quietly()
            if piggyback is not None and first and \
                    piggyback[0] == attempt_shard:
                shard, pb, mapping = piggyback
            else:
                if piggyback is not None and first:
                    # The carried run targets a different shard: flush it
                    # before the prefetch so sequence order is preserved.
                    self._flush_piggyback(piggyback, piggyback_results)
                    piggyback = None
                shard, pb, mapping = attempt_shard, \
                    self._proxies[attempt_shard].batch(), None
            first = False
            if txn._remote is None:
                remote = pb.txn_create(txn._timeout_ms)
            else:
                remote = txn._remote
            if multiple:
                pb.take_multiple(template, max_entries, txn=remote,
                                 timeout_ms=0.0)
            else:
                pb.take(template, txn=remote, timeout_ms=0.0)
            values = pb.flush()
            if mapping is not None and piggyback_results is not None:
                for op_index, pb_index, op in mapping:
                    piggyback_results[op_index] = values[pb_index]
                    optxn = op.get("txn")
                    if op["kind"] in ("commit", "abort") and \
                            isinstance(optxn, ShardedTransaction):
                        optxn.completed = True
                piggyback = None
            if txn._remote is None:
                txn._adopt(shard, remote)
            got = values[-1]
            if (multiple and got) or (not multiple and got is not None):
                self._cursor = shard
                self._hot = True
                return got
            self._hot = False
            if timeout_ms == 0.0 or self._expired(deadline):
                return empty
            txn._unbind_quietly()
            attempt_shard = None

    def _flush_piggyback(self, pending: tuple,
                         results: Optional[list[Any]]) -> None:
        shard, pb, mapping = pending
        values = pb.flush()
        if results is None:
            return
        for op_index, pb_index, op in mapping:
            results[op_index] = values[pb_index]
            txn = op.get("txn")
            if op["kind"] in ("commit", "abort") and \
                    isinstance(txn, ShardedTransaction):
                txn.completed = True
