"""Deterministic chaos plans: *what* fails, *when*, for *how long*.

A :class:`FaultPlan` is pure data — an ordered list of
:class:`FaultEvent` — so the same plan replays the same failure sequence
on every run.  Plans come from two places:

* hand-written, for targeted tests ("crash worker1 at t=2500 ms");
* :meth:`FaultPlan.generate`, which draws a random schedule from a seeded
  :class:`numpy.random.Generator` (use a named
  :class:`~repro.sim.rng.RandomStreams` stream), so whole chaos campaigns
  are replayable from a single integer seed.

The plan is inert until a :class:`~repro.faults.injector.FaultInjector`
arms it on a runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.network import ChaosProfile

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind:
    """The failure modes the injector knows how to apply (see DESIGN.md)."""

    WORKER_CRASH = "worker-crash"      # abrupt node death, no recovery
    LINK_FLAP = "link-flap"            # partition target host, heal later
    SERVER_RESTART = "server-restart"  # space server down, up after duration
    CHAOS_WINDOW = "chaos-window"      # probabilistic drop/delay period
    KILL_PRIMARY_SPACE = "kill-primary-space"  # permanent; standby promotes
    KILL_MASTER = "kill-master"        # master process dies; resume from ckpt
    KILL_SHARD = "kill-shard"          # one shard's primary dies (target=index)
    PARTITION = "partition"            # asymmetric cut: target's egress dies
    PAUSE = "pause"                    # process stall: traffic held, not lost
    GRAY_SLOW = "gray-slow"            # gray failure: target N-times slower

    ALL = (WORKER_CRASH, LINK_FLAP, SERVER_RESTART, CHAOS_WINDOW,
           KILL_PRIMARY_SPACE, KILL_MASTER, KILL_SHARD,
           PARTITION, PAUSE, GRAY_SLOW)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    ``target`` is a hostname for worker/link faults, ignored for server
    faults.  For :data:`~FaultKind.PARTITION` / :data:`~FaultKind.PAUSE` /
    :data:`~FaultKind.GRAY_SLOW` it may also be the symbolic ``"space"``
    (the primary space host) or ``"shard:<i>"`` (shard *i*'s host) — the
    injector resolves those against the deployment.  ``duration_ms`` is
    how long the fault persists before the injector heals it (``None`` =
    permanent, only meaningful for crashes).  ``profile`` configures a
    :data:`~FaultKind.CHAOS_WINDOW`; ``factor`` is the
    :data:`~FaultKind.GRAY_SLOW` latency multiplier.
    """

    at_ms: float
    kind: str
    target: Optional[str] = None
    duration_ms: Optional[float] = None
    profile: Optional[ChaosProfile] = None
    factor: float = 10.0

    def describe(self) -> str:
        parts = [f"t={self.at_ms:.0f}ms {self.kind}"]
        if self.target:
            parts.append(self.target)
        if self.kind == FaultKind.GRAY_SLOW:
            parts.append(f"x{self.factor:g}")
        if self.duration_ms is not None:
            parts.append(f"for {self.duration_ms:.0f}ms")
        return " ".join(parts)

    def to_dict(self) -> dict:
        out: dict = {"at_ms": self.at_ms, "kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.duration_ms is not None:
            out["duration_ms"] = self.duration_ms
        if self.kind == FaultKind.GRAY_SLOW:
            out["factor"] = self.factor
        if self.profile is not None:
            out["profile"] = repr(self.profile)
        return out


@dataclass
class FaultPlan:
    """An ordered, replayable schedule of failures."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at_ms)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_ms)
        return self

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        if not self.events:
            return "(empty fault plan)"
        return "\n".join(e.describe() for e in self.events)

    def to_dict(self) -> dict:
        """JSON-ready form — stored in postmortem bundles so a dump
        names the exact campaign that was running when it fired."""
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def generate(
        cls,
        rng,
        hosts: Sequence[str],
        horizon_ms: float = 30_000.0,
        crashes: int = 1,
        flaps: int = 1,
        server_restarts: int = 1,
        flap_ms: tuple[float, float] = (500.0, 3_000.0),
        restart_ms: tuple[float, float] = (300.0, 1_500.0),
        chaos_windows: int = 0,
        chaos_profile: Optional[ChaosProfile] = None,
        chaos_ms: tuple[float, float] = (1_000.0, 5_000.0),
        partitions: int = 0,
        pauses: int = 0,
        gray_slows: int = 0,
        partition_ms: tuple[float, float] = (1_000.0, 3_000.0),
        pause_ms: tuple[float, float] = (500.0, 1_500.0),
        slow_ms: tuple[float, float] = (1_000.0, 4_000.0),
        slow_factor: float = 10.0,
        nemesis_targets: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """Draw a random schedule from ``rng`` (a seeded numpy Generator).

        Fault times are uniform over ``[0.1, 0.9] * horizon_ms`` so the
        run has quiet lead-in and drain phases; targets are drawn
        uniformly from ``hosts``.  Same rng state → same plan, always.
        """
        hosts = list(hosts)
        events: list[FaultEvent] = []

        def when() -> float:
            return float(rng.uniform(0.1 * horizon_ms, 0.9 * horizon_ms))

        def pick_host() -> Optional[str]:
            if not hosts:
                return None
            return hosts[int(rng.integers(0, len(hosts)))]

        for _ in range(crashes):
            events.append(FaultEvent(when(), FaultKind.WORKER_CRASH,
                                     target=pick_host()))
        for _ in range(flaps):
            events.append(FaultEvent(
                when(), FaultKind.LINK_FLAP, target=pick_host(),
                duration_ms=float(rng.uniform(*flap_ms)),
            ))
        for _ in range(server_restarts):
            events.append(FaultEvent(
                when(), FaultKind.SERVER_RESTART,
                duration_ms=float(rng.uniform(*restart_ms)),
            ))
        profile = chaos_profile if chaos_profile is not None else ChaosProfile(
            datagram_drop=0.05, stream_drop=0.02, extra_delay_ms=5.0,
            delay_probability=0.2,
        )
        for _ in range(chaos_windows):
            events.append(FaultEvent(
                when(), FaultKind.CHAOS_WINDOW,
                duration_ms=float(rng.uniform(*chaos_ms)), profile=profile,
            ))
        # Nemesis faults (partition/pause/gray-slow) default to hitting
        # the space itself — that is where split-brain lives — unless the
        # caller names other targets.
        targets = list(nemesis_targets) if nemesis_targets else ["space"]

        def pick_target() -> str:
            return targets[int(rng.integers(0, len(targets)))]

        for _ in range(partitions):
            events.append(FaultEvent(
                when(), FaultKind.PARTITION, target=pick_target(),
                duration_ms=float(rng.uniform(*partition_ms)),
            ))
        for _ in range(pauses):
            events.append(FaultEvent(
                when(), FaultKind.PAUSE, target=pick_target(),
                duration_ms=float(rng.uniform(*pause_ms)),
            ))
        for _ in range(gray_slows):
            events.append(FaultEvent(
                when(), FaultKind.GRAY_SLOW, target=pick_target(),
                duration_ms=float(rng.uniform(*slow_ms)),
                factor=slow_factor,
            ))
        return cls(events)
