"""Arms a :class:`~repro.faults.plan.FaultPlan` on a live deployment.

One runtime process per scheduled event sleeps in virtual time until the
event fires, applies the fault, and — for faults with a duration — sleeps
again and heals it.  Everything runs on the simulation clock, so a chaos
campaign is as deterministic as the plan and the RNG streams feeding it.

Every injection and heal is recorded as a metrics event
(``fault-injected`` / ``fault-healed``) so recovery latencies can be read
straight out of the trace next to ``proxy-reconnected`` /
``worker-recovered`` / ``dead-letter`` events.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics import Metrics
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.net.network import Network
from repro.runtime.base import Runtime
from repro.util.log import get_logger

__all__ = ["FaultInjector"]

_log = get_logger("faults")


class FaultInjector:
    """Applies a fault plan to workers, links, and the space server."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        plan: FaultPlan,
        metrics: Metrics,
        worker_hosts: Optional[dict[str, object]] = None,
        space_server: Optional[object] = None,
        rng=None,
        primary_killer=None,
        master_killer=None,
        shard_killer=None,
        space_hosts: Optional[list[str]] = None,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.plan = plan
        self.metrics = metrics
        self.worker_hosts = worker_hosts or {}
        self.space_server = space_server
        #: Coordinator faults: callables (framework hooks) rather than raw
        #: objects, because "the master" is a different object after each
        #: restart and the primary kill must also be observable.
        self.primary_killer = primary_killer
        self.master_killer = master_killer
        #: Sharded deployments: callable taking the shard index to crash.
        self.shard_killer = shard_killer
        #: Hostname per shard (index 0 doubles as "the" space host), used
        #: to resolve the symbolic ``space`` / ``shard:<i>`` targets of
        #: partition/pause/gray-slow events.
        self.space_hosts = list(space_hosts) if space_hosts else []
        self._rng = rng          # drives ChaosProfile drop/delay draws
        self.injected = 0
        self.healed = 0
        self._armed = False
        self._disarmed = False

    @classmethod
    def for_framework(cls, framework, plan: FaultPlan, rng=None) -> "FaultInjector":
        """Wire an injector to a started AdaptiveClusterFramework."""
        hosts = {h.node.hostname: h for h in framework.worker_hosts}
        return cls(
            framework.runtime, framework.cluster.network, plan,
            framework.metrics, worker_hosts=hosts,
            space_server=framework.space_server, rng=rng,
            primary_killer=framework.kill_primary_space,
            master_killer=framework.kill_master,
            shard_killer=getattr(framework, "kill_shard", None),
            space_hosts=getattr(framework, "shard_hosts", None),
        )

    def arm(self) -> None:
        """Schedule every event in the plan (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for index, event in enumerate(self.plan):
            self.runtime.spawn(
                lambda e=event: self._run_event(e),
                name=f"fault:{index}:{event.kind}",
            )

    def disarm(self) -> None:
        """Suppress any event that has not fired yet and heal every
        outstanding network fault (the run is over; a framework being
        shut down must not stay partitioned, paused or slowed — held
        deliveries in particular would otherwise leak past the run)."""
        self._disarmed = True
        self.network.resume_all()
        self.network.heal_all_partitions()
        self.network.heal_all_slow()
        self.network.clear_chaos()

    def resolve_target(self, target: Optional[str]) -> Optional[str]:
        """Map a symbolic fault target to a hostname.

        ``space`` → the (first) space host; ``shard:<i>`` → shard *i*'s
        host; anything else is taken as a literal hostname.
        """
        if target is None:
            return None
        if target == "space":
            return self.space_hosts[0] if self.space_hosts else None
        if target.startswith("shard:"):
            index = int(target.split(":", 1)[1])
            if not self.space_hosts:
                return None
            return self.space_hosts[index % len(self.space_hosts)]
        return target

    # -- internals ------------------------------------------------------------------

    def _run_event(self, event: FaultEvent) -> None:
        delay = event.at_ms - self.runtime.now()
        if delay > 0:
            self.runtime.sleep(delay)
        if self._disarmed:
            return
        self._apply(event)
        if event.duration_ms is not None and event.kind != FaultKind.WORKER_CRASH:
            self.runtime.sleep(event.duration_ms)
            if not self._disarmed:
                self._heal(event)

    def _record(self, phase: str, event: FaultEvent) -> None:
        self.metrics.event(
            phase, kind=event.kind, target=event.target,
            duration_ms=event.duration_ms,
        )
        _log.info("t=%.0fms %s: %s", self.runtime.now(), phase,
                  event.describe())

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == FaultKind.WORKER_CRASH:
            host = self.worker_hosts.get(event.target)
            if host is None:
                return
            host.crash()
        elif kind == FaultKind.LINK_FLAP:
            if event.target is None:
                return
            self.network.isolate(event.target)
        elif kind == FaultKind.SERVER_RESTART:
            if self.space_server is None:
                return
            self.space_server.crash()
        elif kind == FaultKind.CHAOS_WINDOW:
            self.network.set_chaos(event.profile, rng=self._rng)
        elif kind == FaultKind.KILL_PRIMARY_SPACE:
            if self.primary_killer is None:
                return
            self.primary_killer()
        elif kind == FaultKind.KILL_MASTER:
            if self.master_killer is None:
                return
            self.master_killer()
        elif kind == FaultKind.KILL_SHARD:
            if self.shard_killer is None or event.target is None:
                return
            self.shard_killer(int(event.target))
        elif kind == FaultKind.PARTITION:
            host = self.resolve_target(event.target)
            if host is None:
                return
            # Asymmetric cut: the target's egress vanishes while ingress
            # still flows — the shape that manufactures split-brain (a
            # primary that hears requests but whose acks and heartbeat
            # replies never arrive).  Loopback is exempt, as on a real
            # host whose NIC dies.
            self.network.partition(host, "*")
        elif kind == FaultKind.PAUSE:
            host = self.resolve_target(event.target)
            if host is None:
                return
            self.network.pause(host)
        elif kind == FaultKind.GRAY_SLOW:
            host = self.resolve_target(event.target)
            if host is None:
                return
            self.network.slow(host, event.factor)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.injected += 1
        self._record("fault-injected", event)

    def _heal(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == FaultKind.LINK_FLAP:
            self.network.heal(event.target)
        elif kind == FaultKind.SERVER_RESTART:
            self.space_server.start()
        elif kind == FaultKind.CHAOS_WINDOW:
            self.network.clear_chaos()
        elif kind == FaultKind.PARTITION:
            host = self.resolve_target(event.target)
            if host is not None:
                self.network.heal_partition(host, "*")
        elif kind == FaultKind.PAUSE:
            host = self.resolve_target(event.target)
            if host is not None:
                self.network.resume(host)
        elif kind == FaultKind.GRAY_SLOW:
            host = self.resolve_target(event.target)
            if host is not None:
                self.network.heal_slow(host)
        else:
            return
        self.healed += 1
        self._record("fault-healed", event)
