"""Deterministic chaos injection for the simulated cluster.

The fault model and its recovery mechanisms are catalogued in DESIGN.md
("Fault model & recovery").  A :class:`FaultPlan` is replayable data, a
:class:`FaultInjector` arms it against a live deployment, and
:class:`~repro.net.network.ChaosProfile` supplies the probabilistic
message-level faults.
"""

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import FaultInjector

__all__ = ["FaultEvent", "FaultKind", "FaultPlan", "FaultInjector"]
