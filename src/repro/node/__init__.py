"""Cluster node model: machines, CPU accounting, load generators.

The CPU model is what makes the adaptation experiments reproducible: each
node tracks *background* load (interactive users / load simulators) and
*foreign* load (the framework's worker computing a task).  A task's
execution rate shrinks as background load grows (processor sharing), and
both instantaneous and windowed utilization are observable — the SNMP
agent's MIB providers read them directly.
"""

from repro.node.machine import MachineSpec, Node
from repro.node.cpu import CpuModel
from repro.node.loadgen import LoadScript, LoadSimulator1, LoadSimulator2
from repro.node.cluster import Cluster, testbed_large, testbed_small

__all__ = [
    "MachineSpec",
    "Node",
    "CpuModel",
    "LoadSimulator1",
    "LoadSimulator2",
    "LoadScript",
    "Cluster",
    "testbed_small",
    "testbed_large",
]
