"""Machine specifications and nodes.

A :class:`Node` bundles a machine spec with its CPU model, its SNMP agent
MIB bindings, and its position on the network — everything the framework
needs to treat it as one cluster member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.network import Network
from repro.node.cpu import CpuModel
from repro.node.memory import MemoryModel
from repro.runtime.base import Runtime
from repro.snmp.agent import SnmpAgent
from repro.snmp.mib import HOST_RESOURCES, Mib

__all__ = ["MachineSpec", "Node"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description (the paper's two PC types)."""

    cpu_mhz: float
    ram_mb: int

    def __str__(self) -> str:
        return f"{self.cpu_mhz:.0f} MHz / {self.ram_mb} MB"


#: The paper's testbed machine types.
FAST_PC = MachineSpec(cpu_mhz=800.0, ram_mb=256)   # Pentium III, 256 MB
SLOW_PC = MachineSpec(cpu_mhz=300.0, ram_mb=64)    # 300 MHz, 64 MB


class Node:
    """One cluster member: machine + CPU + (optional) SNMP agent."""

    def __init__(
        self,
        runtime: Runtime,
        network: Network,
        hostname: str,
        spec: MachineSpec,
        snmp_community: str = "public",
        load_window_ms: float = 1000.0,
    ) -> None:
        self.runtime = runtime
        self.network = network
        self.hostname = hostname
        self.spec = spec
        self.cpu = CpuModel(runtime, spec.cpu_mhz)
        self.memory = MemoryModel(spec.ram_mb)
        self.load_window_ms = load_window_ms
        self.snmp_community = snmp_community
        self._agent: Optional[SnmpAgent] = None

    # -- SNMP -------------------------------------------------------------------

    def build_mib(self) -> Mib:
        """MIB exposing this node's live state (fed by the CPU model)."""
        mib = Mib()
        mib.register(HOST_RESOURCES.SYS_DESCR, f"repro node ({self.spec})")
        mib.register(HOST_RESOURCES.SYS_NAME, self.hostname)
        mib.register(HOST_RESOURCES.SYS_UPTIME, lambda: int(self.runtime.now() / 10))
        mib.register(HOST_RESOURCES.HR_MEMORY_SIZE_KB, self.spec.ram_mb * 1024)
        mib.register(HOST_RESOURCES.HR_STORAGE_USED_KB, self.memory.used_kb)
        mib.register(
            HOST_RESOURCES.HR_PROCESSOR_LOAD,
            lambda: round(self.cpu.average_total(self.load_window_ms)),
        )
        mib.register(
            HOST_RESOURCES.EXTERNAL_LOAD,
            lambda: round(self.cpu.average_external(self.load_window_ms)),
        )
        mib.register(
            HOST_RESOURCES.TOTAL_LOAD,
            lambda: round(self.cpu.total_percent()),
        )
        return mib

    def start_agent(self) -> SnmpAgent:
        """Start the SNMP worker-agent on this node (idempotent)."""
        if self._agent is None:
            self._agent = SnmpAgent(
                self.runtime, self.network, self.hostname,
                self.build_mib(), community=self.snmp_community,
            )
            self._agent.start()
        return self._agent

    def stop_agent(self) -> None:
        if self._agent is not None:
            self._agent.stop()
            self._agent = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.hostname}, {self.spec})"
