"""Node memory model.

Named allocations against a node's RAM budget.  This is what encodes the
paper's deployment constraint: "Due to the high memory requirements of
the Jini infrastructure, the master module … runs on an 800 MHz Intel
Pentium III processor PC with 256 MB RAM" — a 64 MB worker PC simply
cannot host the Jini + JavaSpaces services.
"""

from __future__ import annotations

from repro.errors import OutOfMemoryError

__all__ = ["MemoryModel"]


class MemoryModel:
    """Simple named-allocation accounting (KB granularity)."""

    def __init__(self, total_mb: int) -> None:
        if total_mb <= 0:
            raise ValueError(f"total_mb must be positive: {total_mb}")
        self.total_kb = total_mb * 1024
        self._allocations: dict[str, int] = {}
        self.peak_kb = 0

    def allocate(self, name: str, kb: int) -> None:
        """Reserve ``kb``; replaces any existing allocation of ``name``."""
        if kb < 0:
            raise ValueError(f"negative allocation: {kb}")
        current = self._allocations.get(name, 0)
        if self.used_kb() - current + kb > self.total_kb:
            raise OutOfMemoryError(
                f"cannot allocate {kb} KB for {name!r}: "
                f"{self.available_kb() + current} KB free of {self.total_kb} KB"
            )
        self._allocations[name] = kb
        self.peak_kb = max(self.peak_kb, self.used_kb())

    def free(self, name: str) -> None:
        self._allocations.pop(name, None)

    def used_kb(self) -> int:
        return sum(self._allocations.values())

    def available_kb(self) -> int:
        return self.total_kb - self.used_kb()

    def holds(self, name: str) -> bool:
        return name in self._allocations
