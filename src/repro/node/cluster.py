"""Cluster assembly: the paper's two testbeds as ready-made factories.

* :func:`testbed_small` — "a five PC cluster, with 800 MHz Intel Pentium
  III processors and 256 MB RAM" (ray tracing, pre-fetching), master on
  an equal 800 MHz machine.
* :func:`testbed_large` — "a larger cluster with thirteen PCs … 300 MHz
  processors and 64 MB RAM" (option pricing); "due to the high memory
  requirements of the Jini infrastructure, the master module … runs on an
  800 MHz Intel Pentium III processor PC with 256 MB RAM."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.node.machine import FAST_PC, SLOW_PC, MachineSpec, Node
from repro.runtime.base import Runtime
from repro.sim.rng import RandomStreams

__all__ = ["Cluster", "testbed_small", "testbed_large"]


class Cluster:
    """A master node plus worker nodes on one network segment."""

    def __init__(
        self,
        runtime: Runtime,
        master_spec: MachineSpec = FAST_PC,
        latency: Optional[LatencyModel] = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.runtime = runtime
        self.streams = streams if streams is not None else RandomStreams(0)
        self.network = Network(
            runtime,
            latency=latency if latency is not None else LatencyModel(),
            rng=self.streams.stream("network"),
        )
        self.master = Node(runtime, self.network, "master", master_spec)
        self.workers: list[Node] = []
        self.space_hosts: list[Node] = []

    def add_worker(self, spec: MachineSpec, hostname: Optional[str] = None) -> Node:
        name = hostname if hostname is not None else f"worker{len(self.workers) + 1}"
        node = Node(self.runtime, self.network, name, spec)
        self.workers.append(node)
        return node

    def add_workers(self, count: int, spec: MachineSpec) -> list[Node]:
        return [self.add_worker(spec) for _ in range(count)]

    def add_space_host(self, spec: MachineSpec,
                       hostname: Optional[str] = None) -> Node:
        """A node that serves tuple-space shards but runs no worker — the
        paper's deployment shape (the JavaSpaces server got its own
        machine, off the compute nodes)."""
        name = (hostname if hostname is not None
                else f"space{len(self.space_hosts) + 1}")
        node = Node(self.runtime, self.network, name, spec)
        self.space_hosts.append(node)
        return node

    def add_space_hosts(self, count: int, spec: MachineSpec) -> list[Node]:
        return [self.add_space_host(spec) for _ in range(count)]

    def worker(self, hostname: str) -> Node:
        for node in self.workers:
            if node.hostname == hostname:
                return node
        raise KeyError(hostname)

    @property
    def nodes(self) -> list[Node]:
        return [self.master, *self.workers]

    def rng(self, name: str) -> np.random.Generator:
        return self.streams.stream(name)


def testbed_small(runtime: Runtime, workers: int = 5,
                  streams: Optional[RandomStreams] = None) -> Cluster:
    """Five 800 MHz / 256 MB PCs (ray tracing & pre-fetching experiments)."""
    cluster = Cluster(runtime, master_spec=FAST_PC, streams=streams)
    cluster.add_workers(workers, FAST_PC)
    return cluster


def testbed_large(runtime: Runtime, workers: int = 13,
                  streams: Optional[RandomStreams] = None) -> Cluster:
    """Thirteen 300 MHz / 64 MB PCs, 800 MHz master (option pricing)."""
    cluster = Cluster(runtime, master_spec=FAST_PC, streams=streams)
    cluster.add_workers(workers, SLOW_PC)
    return cluster
