"""Synthetic load generators (the paper's experimental setup, §5.2.2).

* **Load simulator 1** "simulates different types of data transfers, such
  as RTP packets for voice traffic, HTTP traffic, and multimedia traffic
  over HTTP via Java sockets … designed to raise the CPU usage level on
  the worker from 30 % to 50 %."  Modelled as a bursty source whose level
  resamples uniformly in [30, 50] at traffic-burst intervals.
* **Load simulator 2** "raised the CPU utilization of the worker machines
  to 100 %."  Modelled as a constant 100 % source.

:class:`LoadScript` drives repeatable load timelines for the adaptation
experiments (start/stop simulators at scripted virtual times).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.node.machine import Node
from repro.runtime.base import Runtime

__all__ = ["LoadSimulator1", "LoadSimulator2", "LoadScript"]


class _LoadSimulator:
    """Common start/stop machinery for background load sources."""

    source_name = "loadsim"

    def __init__(self, runtime: Runtime, node: Node) -> None:
        self.runtime = runtime
        self.node = node
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._apply()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.node.cpu.clear_background(self.source_name)

    def _apply(self) -> None:
        raise NotImplementedError


class LoadSimulator1(_LoadSimulator):
    """Bursty 30–50 % traffic load (RTP/HTTP/multimedia mix)."""

    source_name = "loadsim1"

    def __init__(
        self,
        runtime: Runtime,
        node: Node,
        rng: Optional[np.random.Generator] = None,
        low: float = 30.0,
        high: float = 50.0,
        burst_ms: tuple[float, float] = (150.0, 450.0),
    ) -> None:
        super().__init__(runtime, node)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.low = low
        self.high = high
        self.burst_ms = burst_ms

    def _apply(self) -> None:
        self.runtime.spawn(self._burst_loop, name=f"loadsim1:{self.node.hostname}")

    def _burst_loop(self) -> None:
        while self.running:
            level = float(self.rng.uniform(self.low, self.high))
            self.node.cpu.set_background(self.source_name, level)
            self.runtime.sleep(float(self.rng.uniform(*self.burst_ms)))
        self.node.cpu.clear_background(self.source_name)


class LoadSimulator2(_LoadSimulator):
    """Saturating 100 % load (a higher-priority interactive job)."""

    source_name = "loadsim2"

    def _apply(self) -> None:
        self.node.cpu.set_background(self.source_name, 100.0)


class LoadScript:
    """Repeatable load timeline: ``[(t_ms, action), …]`` run as a process.

    Actions are zero-argument callables (typically simulator ``start`` /
    ``stop`` bound methods).  Times are absolute virtual times from the
    script's start.
    """

    def __init__(self, runtime: Runtime, steps: list[tuple[float, Callable[[], None]]]):
        self.runtime = runtime
        self.steps = sorted(steps, key=lambda s: s[0])
        self.done = False

    def start(self) -> None:
        self.runtime.spawn(self._run, name="load-script")

    def _run(self) -> None:
        base = self.runtime.now()
        for at_ms, action in self.steps:
            delay = base + at_ms - self.runtime.now()
            if delay > 0:
                self.runtime.sleep(delay)
            action()
        self.done = True
