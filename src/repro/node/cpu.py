"""Processor-sharing CPU model with utilization accounting.

Work is measured in **reference milliseconds**: the time the job would
take on an unloaded reference machine (800 MHz, the paper's fast PCs).
A 300 MHz worker therefore takes ``800/300 ≈ 2.67×`` longer, and any
background load shrinks the share available to the foreign task further:

    progress rate = min(demand, 100 − background) / 100   (per local ms)

Background load changes take effect immediately — ``execute`` re-plans its
completion time whenever a load source changes, so a load simulator
kicking in mid-task stretches exactly the remaining work.

Utilization is recorded as a step function ``(t, total %, external %)``;
windowed averages integrate it.  *External* load excludes the framework's
own task — the quantity the inference engine thresholds act on (the
paper's workers survive their own 100 % compute spikes, see Fig. 10).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.runtime.base import Runtime

__all__ = ["CpuModel", "UtilizationRecorder"]

#: Reference machine speed for work units (the paper's 800 MHz PIII).
REFERENCE_MHZ = 800.0


class UtilizationRecorder:
    """Step-function record of (total, external) CPU utilization."""

    def __init__(self, runtime: Runtime, keep_ms: float = 600_000.0) -> None:
        self._runtime = runtime
        self._keep_ms = keep_ms
        self._steps: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)]

    def record(self, total: float, external: float) -> None:
        now = self._runtime.now()
        last_t, last_total, last_ext = self._steps[-1]
        if last_t == now:
            self._steps[-1] = (now, total, external)
        elif (total, external) != (last_total, last_ext):
            self._steps.append((now, total, external))
        self._trim(now)

    def _trim(self, now: float) -> None:
        cutoff = now - self._keep_ms
        # Keep one sample at/before the cutoff so integration stays exact.
        while len(self._steps) > 2 and self._steps[1][0] <= cutoff:
            self._steps.pop(0)

    def history(self) -> list[tuple[float, float, float]]:
        return list(self._steps)

    def average(self, window_ms: float, external: bool = False) -> float:
        """Mean utilization over the trailing ``window_ms``."""
        now = self._runtime.now()
        start = max(0.0, now - window_ms)
        if now <= start:
            _, total, ext = self._steps[-1]
            return ext if external else total
        index = 1 if external else 0
        area = 0.0
        for i, (t, total, ext) in enumerate(self._steps):
            t_next = self._steps[i + 1][0] if i + 1 < len(self._steps) else now
            lo, hi = max(t, start), min(t_next, now)
            if hi > lo:
                area += (ext if external else total) * (hi - lo)
        return area / (now - start)


class CpuModel:
    """One node's CPU: background sources plus at most one foreign task."""

    def __init__(
        self,
        runtime: Runtime,
        speed_mhz: float,
        ref_mhz: float = REFERENCE_MHZ,
        min_share_percent: float = 0.0,
    ) -> None:
        """``min_share_percent`` > 0 models OS time-slicing fairness: a
        foreign task always gets at least that CPU share even under a
        saturating background load (ablation knob; 0 = pure processor
        sharing, where 100 % background fully starves the task)."""
        if speed_mhz <= 0:
            raise SimulationError(f"speed must be positive: {speed_mhz}")
        self.runtime = runtime
        self.speed_mhz = speed_mhz
        self.ref_mhz = ref_mhz
        self.min_share_percent = min_share_percent
        self.recorder = UtilizationRecorder(runtime)
        self._background: dict[str, float] = {}
        self._tasks: list[float] = []  # demand (%) of each running foreign task
        self._change = runtime.condition()
        self.busy_ms = 0.0  # cumulative foreign task-time (overlap counts per task)

    # -- load sources ------------------------------------------------------------

    def set_background(self, name: str, percent: float) -> None:
        """Set a named background load source to ``percent`` demand."""
        self._background[name] = max(0.0, min(100.0, percent))
        self._on_change()

    def clear_background(self, name: str) -> None:
        if self._background.pop(name, None) is not None:
            self._on_change()

    def background_percent(self) -> float:
        return min(100.0, sum(self._background.values()))

    def _on_change(self) -> None:
        self._record()
        with self._change:
            self._change.notify_all()

    # -- observation ----------------------------------------------------------------

    def _share_of(self, demand: float) -> float:
        """Fair processor-sharing slice for one foreign task right now."""
        if not self._tasks:
            return 0.0
        available = max(0.0, 100.0 - self.background_percent())
        share = min(demand, available / len(self._tasks))
        if self.min_share_percent > 0.0:
            share = max(share, min(self.min_share_percent, demand))
        return share

    def foreign_percent(self) -> float:
        """Instantaneous share consumed by all foreign tasks together."""
        return sum(self._share_of(demand) for demand in self._tasks)

    def total_percent(self) -> float:
        return min(100.0, self.background_percent() + self.foreign_percent())

    def external_percent(self) -> float:
        return self.background_percent()

    def average_total(self, window_ms: float = 1000.0) -> float:
        self._record()
        return self.recorder.average(window_ms, external=False)

    def average_external(self, window_ms: float = 1000.0) -> float:
        self._record()
        return self.recorder.average(window_ms, external=True)

    def _record(self) -> None:
        self.recorder.record(self.total_percent(), self.external_percent())

    # -- execution ---------------------------------------------------------------------

    def execute(self, work_ref_ms: float, demand_percent: float = 100.0) -> float:
        """Run ``work_ref_ms`` of reference work; returns elapsed local ms.

        Blocks the calling process for the modelled duration, re-planning
        whenever background load changes.  ``demand_percent`` caps how much
        CPU the job asks for (class loading spikes demand less than 100 %).
        """
        elapsed, _completed = self.execute_interruptible(work_ref_ms, demand_percent)
        return elapsed

    def execute_interruptible(
        self,
        work_ref_ms: float,
        demand_percent: float = 100.0,
        abort_check: Optional[callable] = None,
    ) -> tuple[float, bool]:
        """Like :meth:`execute`, but abortable at load-change points.

        ``abort_check()`` is consulted whenever the background load changes
        (including on starvation); returning True abandons the remaining
        work.  Job-level schedulers use this to model eviction killing an
        in-flight job, losing un-checkpointed progress.

        Returns ``(elapsed_local_ms, completed)``.
        """
        if work_ref_ms < 0:
            raise SimulationError(f"negative work: {work_ref_ms}")
        remaining = work_ref_ms * (self.ref_mhz / self.speed_mhz)
        started = self.runtime.now()
        demand = max(0.0, min(100.0, demand_percent))
        # Multiple foreign tasks share the CPU fairly (each additionally
        # capped by its own demand) — two frameworks' workers, or a master
        # co-located with services, coexist like real processes would.
        self._tasks.append(demand)
        self._on_change()
        completed = True
        try:
            while remaining > 1e-9:
                if abort_check is not None and abort_check():
                    completed = False
                    break
                share = self._share_of(demand)
                if share < 0.5:
                    # Starved: wait for load/competitors to ease off.
                    with self._change:
                        self._change.wait(timeout=None)
                    continue
                rate = share / 100.0
                duration = remaining / rate
                slice_start = self.runtime.now()
                with self._change:
                    changed = self._change.wait(timeout=duration)
                elapsed = self.runtime.now() - slice_start
                done = elapsed * rate
                remaining -= done
                self.busy_ms += elapsed
                if not changed:
                    break  # the full slice ran: remaining is ~0
        finally:
            self._tasks.remove(demand)
            self._on_change()
        return self.runtime.now() - started, completed
