"""Experiment 1: scalability analysis (Figs 6, 7, 8).

For each worker count, run the application through the framework on a
fresh simulated cluster and measure the paper's four quantities:

* **Max Worker Time** — max over workers of (first task access → last
  result written);
* **Task Planning Time** — the master's task-planning phase;
* **Task Aggregation Time** — the master's result-collection phase
  (expected to follow max worker time);
* **Parallel Time** — whole application, start to finish, at the master.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.application import Application
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import Cluster
from repro.runtime.base import Runtime
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["ScalabilityRow", "ScalabilityResult", "scalability_experiment"]


@dataclass(frozen=True)
class ScalabilityRow:
    workers: int
    max_worker_ms: float
    parallel_ms: float
    planning_ms: float
    aggregation_ms: float

    @property
    def speedup_base(self) -> float:
        """parallel_ms; speedup is computed against the 1-worker row."""
        return self.parallel_ms


@dataclass
class ScalabilityResult:
    app_id: str
    rows: list[ScalabilityRow] = field(default_factory=list)
    #: Telemetry from the *last* sweep point when run with ``trace=True``
    #: (the largest cluster — the point whose span tree is interesting).
    tracer: Any = None
    prometheus: str = ""

    def speedups(self) -> list[tuple[int, float]]:
        base = self.rows[0].parallel_ms
        return [(r.workers, base / r.parallel_ms) for r in self.rows]

    def best_worker_count(self) -> int:
        return min(self.rows, key=lambda r: r.parallel_ms).workers

    def format_table(self) -> str:
        header = (
            f"{'workers':>8} {'max worker (ms)':>16} {'parallel (ms)':>14} "
            f"{'planning (ms)':>14} {'aggregation (ms)':>17}"
        )
        lines = [f"Scalability — {self.app_id}", header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workers:>8d} {row.max_worker_ms:>16.0f} "
                f"{row.parallel_ms:>14.0f} {row.planning_ms:>14.0f} "
                f"{row.aggregation_ms:>17.0f}"
            )
        return "\n".join(lines)


def run_framework_once(
    runtime: SimulatedRuntime,
    cluster: Cluster,
    app: Application,
    config: Optional[FrameworkConfig] = None,
):
    """Start the framework, run the master to completion, tear down.

    Returns ``(report, framework)``; intended to run inside a simulated
    process (see :func:`repro.experiments.harness.run_simulation`).
    """
    framework = AdaptiveClusterFramework(runtime, cluster, app, config)
    framework.start()
    report = framework.run()
    framework.shutdown()
    return report, framework


def scalability_experiment(
    app_factory: Callable[[], Application],
    cluster_factory: Callable[..., Cluster],
    worker_counts: list[int],
    config: Optional[FrameworkConfig] = None,
    seed: int = 0,
    trace: bool = False,
) -> ScalabilityResult:
    """Sweep the worker count; one isolated simulation per point.

    ``trace`` records telemetry spans at the final (largest) sweep point
    and attaches the tracer + Prometheus dump to the result.  Timing is
    unaffected — trace IDs ride in the entries whether or not spans are
    recorded.
    """
    app_id = app_factory().app_id
    result = ScalabilityResult(app_id=app_id)
    if config is None:
        # Real results are identical at every sweep point (same app), so
        # skip re-computing them: the sweep measures time, not values.
        config = FrameworkConfig(compute_real=False)

    for index, workers in enumerate(worker_counts):
        traced = trace and index == len(worker_counts) - 1
        point_config = (dataclasses.replace(config, trace=True)
                        if traced else config)

        def body(runtime: SimulatedRuntime, workers=workers,
                 point_config=point_config, traced=traced):
            cluster = cluster_factory(
                runtime, workers=workers, streams=RandomStreams(seed)
            )
            report, framework = run_framework_once(
                runtime, cluster, app_factory(), point_config
            )
            row = ScalabilityRow(
                workers=workers,
                max_worker_ms=framework.max_worker_time_ms(),
                parallel_ms=report.parallel_ms,
                planning_ms=report.planning_ms,
                aggregation_ms=report.aggregation_ms,
            )
            if traced:
                return (row, framework.tracer,
                        framework.telemetry.prometheus_text())
            return row

        outcome = run_simulation(body)
        if traced:
            row, result.tracer, result.prometheus = outcome
        else:
            row = outcome
        result.rows.append(row)
    return result
