"""Experiment 1: scalability analysis (Figs 6, 7, 8).

For each worker count, run the application through the framework on a
fresh simulated cluster and measure the paper's four quantities:

* **Max Worker Time** — max over workers of (first task access → last
  result written);
* **Task Planning Time** — the master's task-planning phase;
* **Task Aggregation Time** — the master's result-collection phase
  (expected to follow max worker time);
* **Parallel Time** — whole application, start to finish, at the master.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.application import Application, ClassLoadProfile, Task
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.net.latency import LatencyModel
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC
from repro.runtime.base import Runtime
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["ScalabilityRow", "ScalabilityResult", "scalability_experiment",
           "EgressBoundStrips", "ShardThroughputRow",
           "sharded_throughput_experiment", "shard_scaling_experiment",
           "format_shard_table"]


@dataclass(frozen=True)
class ScalabilityRow:
    workers: int
    max_worker_ms: float
    parallel_ms: float
    planning_ms: float
    aggregation_ms: float

    @property
    def speedup_base(self) -> float:
        """parallel_ms; speedup is computed against the 1-worker row."""
        return self.parallel_ms


@dataclass
class ScalabilityResult:
    app_id: str
    rows: list[ScalabilityRow] = field(default_factory=list)
    #: Telemetry from the *last* sweep point when run with ``trace=True``
    #: (the largest cluster — the point whose span tree is interesting).
    tracer: Any = None
    prometheus: str = ""

    def speedups(self) -> list[tuple[int, float]]:
        base = self.rows[0].parallel_ms
        return [(r.workers, base / r.parallel_ms) for r in self.rows]

    def best_worker_count(self) -> int:
        return min(self.rows, key=lambda r: r.parallel_ms).workers

    def format_table(self) -> str:
        header = (
            f"{'workers':>8} {'max worker (ms)':>16} {'parallel (ms)':>14} "
            f"{'planning (ms)':>14} {'aggregation (ms)':>17}"
        )
        lines = [f"Scalability — {self.app_id}", header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workers:>8d} {row.max_worker_ms:>16.0f} "
                f"{row.parallel_ms:>14.0f} {row.planning_ms:>14.0f} "
                f"{row.aggregation_ms:>17.0f}"
            )
        return "\n".join(lines)


def run_framework_once(
    runtime: SimulatedRuntime,
    cluster: Cluster,
    app: Application,
    config: Optional[FrameworkConfig] = None,
):
    """Start the framework, run the master to completion, tear down.

    Returns ``(report, framework)``; intended to run inside a simulated
    process (see :func:`repro.experiments.harness.run_simulation`).
    """
    framework = AdaptiveClusterFramework(runtime, cluster, app, config)
    framework.start()
    report = framework.run()
    framework.shutdown()
    return report, framework


def scalability_experiment(
    app_factory: Callable[[], Application],
    cluster_factory: Callable[..., Cluster],
    worker_counts: list[int],
    config: Optional[FrameworkConfig] = None,
    seed: int = 0,
    trace: bool = False,
) -> ScalabilityResult:
    """Sweep the worker count; one isolated simulation per point.

    ``trace`` records telemetry spans at the final (largest) sweep point
    and attaches the tracer + Prometheus dump to the result.  Timing is
    unaffected — trace IDs ride in the entries whether or not spans are
    recorded.
    """
    app_id = app_factory().app_id
    result = ScalabilityResult(app_id=app_id)
    if config is None:
        # Real results are identical at every sweep point (same app), so
        # skip re-computing them: the sweep measures time, not values.
        config = FrameworkConfig(compute_real=False)

    for index, workers in enumerate(worker_counts):
        traced = trace and index == len(worker_counts) - 1
        point_config = (dataclasses.replace(config, trace=True)
                        if traced else config)

        def body(runtime: SimulatedRuntime, workers=workers,
                 point_config=point_config, traced=traced):
            cluster = cluster_factory(
                runtime, workers=workers, streams=RandomStreams(seed)
            )
            report, framework = run_framework_once(
                runtime, cluster, app_factory(), point_config
            )
            row = ScalabilityRow(
                workers=workers,
                max_worker_ms=framework.max_worker_time_ms(),
                parallel_ms=report.parallel_ms,
                planning_ms=report.planning_ms,
                aggregation_ms=report.aggregation_ms,
            )
            if traced:
                return (row, framework.tracer,
                        framework.telemetry.prometheus_text())
            return row

        outcome = run_simulation(body)
        if traced:
            row, result.tracer, result.prometheus = outcome
        else:
            row = outcome
        result.rows.append(row)
    return result


# -- shard scaling: where partitioning actually buys throughput ---------------


class EgressBoundStrips(Application):
    """A raytrace-shaped job whose bottleneck is the space host's uplink.

    Tiny tasks, fat results (one rendered strip ≈ ``result_kb`` KiB).
    With one space, every result-drain reply leaves a single host, and
    that link's egress serialization bounds the job; sharding spreads the
    result entries — and therefore the drain traffic — over N hosts.
    This is the workload class the sharded space is *for*: compute-bound
    jobs are already embarrassingly parallel without it.
    """

    app_id = "egress-strips"

    def __init__(self, n: int = 64, result_kb: int = 48,
                 task_cost: float = 2.0) -> None:
        self.n = n
        self.result_kb = result_kb
        self._task_cost = task_cost

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload=i) for i in range(self.n)]

    def execute(self, payload: Any) -> Any:
        # A deterministic "pixel strip": content varies by strip index so
        # results cannot be accidentally deduplicated anywhere.
        return bytes([payload % 256]) * (self.result_kb * 1024)

    def aggregate(self, results: dict[int, Any]) -> Any:
        return sum(len(v) for v in results.values())

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost

    def planning_cost_ms(self, task: Task) -> float:
        return 0.05

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return 0.05

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(work_ref_ms=50.0, demand_percent=80.0,
                                bundle_bytes=20_000)


@dataclass(frozen=True)
class ShardThroughputRow:
    shards: int
    parallel_ms: float
    tasks_per_s: float


#: The modelled link: ~12.5 KB/ms ≈ 100 Mb/s Ethernet, the paper's LAN.
_SHARD_BENCH_LATENCY = dict(base_ms=0.3, jitter_ms=0.0, per_kb_ms=0.02,
                            egress_kb_per_ms=12.5)


def sharded_throughput_experiment(
    shards: int,
    seed: int = 0,
    workers: int = 16,
    strips: int = 256,
    result_kb: int = 64,
    prefetch: int = 8,
) -> ShardThroughputRow:
    """E2e task throughput of the egress-bound job at one shard count.

    Measured in *virtual* time (tasks per simulated second), so the
    number is deterministic for a given seed and safe to gate on.  Every
    sweep point uses ``shard_placement="dedicated"`` — even the 1-shard
    run goes through the router to a shard served on its own machine —
    so the comparison isolates partitioning, not client machinery or
    server co-location.
    """

    def body(runtime: SimulatedRuntime) -> ShardThroughputRow:
        cluster = Cluster(runtime, master_spec=FAST_PC,
                          latency=LatencyModel(**_SHARD_BENCH_LATENCY),
                          streams=RandomStreams(seed))
        cluster.add_workers(workers, FAST_PC)
        # One server machine per shard, off the compute nodes (the paper
        # ran its JavaSpaces server the same way) — shard egress must not
        # queue behind a co-located worker's result uploads.
        cluster.add_space_hosts(shards, FAST_PC)
        app = EgressBoundStrips(n=strips, result_kb=result_kb)
        config = FrameworkConfig(
            monitoring=False,
            use_jini=False,
            compute_real=True,
            worker_prefetch=prefetch,
            master_seed_batch=max(2 * prefetch, 32),
            master_drain_batch=max(4 * prefetch, 64),
            shards=shards,
            shard_placement="dedicated",
        )
        report, _ = run_framework_once(runtime, cluster, app, config)
        return ShardThroughputRow(
            shards=shards,
            parallel_ms=report.parallel_ms,
            tasks_per_s=strips / (report.parallel_ms / 1000.0),
        )

    return run_simulation(body)


def shard_scaling_experiment(
    shard_counts: list[int],
    seed: int = 0,
    workers: int = 16,
    strips: int = 256,
    result_kb: int = 64,
    prefetch: int = 8,
) -> list[ShardThroughputRow]:
    """Sweep the shard count (one isolated simulation per point)."""
    return [
        sharded_throughput_experiment(
            shards, seed=seed, workers=workers, strips=strips,
            result_kb=result_kb, prefetch=prefetch)
        for shards in shard_counts
    ]


def format_shard_table(rows: list[ShardThroughputRow]) -> str:
    """Render a shard-count sweep as an aligned text table (speedup is
    relative to the first row)."""
    header = f"{'shards':>7} {'parallel (ms)':>14} {'tasks/s':>10} {'speedup':>8}"
    lines = ["Shard scaling — egress-bound strips", header, "-" * len(header)]
    base = rows[0].tasks_per_s if rows else 1.0
    for row in rows:
        lines.append(f"{row.shards:>7d} {row.parallel_ms:>14.0f} "
                     f"{row.tasks_per_s:>10.1f} "
                     f"{row.tasks_per_s / base:>7.2f}x")
    return "\n".join(lines)
