"""Experiment wiring: testbeds and calibrated applications.

The paper's testbeds (§5): ray tracing and pre-fetching run on five
800 MHz/256 MB PCs; option pricing on thirteen 300 MHz/64 MB PCs; the
master is always an 800 MHz/256 MB machine ("due to the high memory
requirements of the Jini infrastructure").

Calibrated cost-model constants live in the application constructors
(:class:`~repro.apps.options.OptionPricingApplication` et al.); this
module only decides *which* application/cluster pairs each experiment
uses, so every bench pulls identical wiring.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.options import OptionPricingApplication
from repro.apps.prefetch import PrefetchApplication
from repro.apps.raytrace import RayTracingApplication
from repro.node.cluster import Cluster, testbed_large, testbed_small
from repro.runtime.base import Runtime
from repro.sim.rng import RandomStreams

__all__ = [
    "make_options_app",
    "make_raytrace_app",
    "make_prefetch_app",
    "options_cluster",
    "raytrace_cluster",
    "prefetch_cluster",
    "APP_FACTORIES",
    "CLUSTER_FACTORIES",
    "MAX_WORKERS",
]

#: Sweep limits per application (the paper's cluster sizes).
MAX_WORKERS = {"option-pricing": 13, "ray-tracing": 5, "web-prefetch": 5}


def make_options_app() -> OptionPricingApplication:
    """10 000 simulations, 50 blocks → 100 high/low subtasks (§5.1.1)."""
    return OptionPricingApplication()


def make_raytrace_app() -> RayTracingApplication:
    """600×600 image, 24 strips of 25 rows (§5.1.2)."""
    return RayTracingApplication()


def make_prefetch_app() -> PrefetchApplication:
    """500-page cluster, strips of 20 → 25 tasks (§5.1.3)."""
    return PrefetchApplication()


def options_cluster(runtime: Runtime, workers: int = 13,
                    streams: Optional[RandomStreams] = None) -> Cluster:
    """The option-pricing testbed: thirteen 300 MHz PCs (§5)."""
    return testbed_large(runtime, workers=workers, streams=streams)


def raytrace_cluster(runtime: Runtime, workers: int = 5,
                     streams: Optional[RandomStreams] = None) -> Cluster:
    """The ray-tracing testbed: five 800 MHz PCs (§5)."""
    return testbed_small(runtime, workers=workers, streams=streams)


def prefetch_cluster(runtime: Runtime, workers: int = 5,
                     streams: Optional[RandomStreams] = None) -> Cluster:
    """The pre-fetching testbed: five 800 MHz PCs (§5)."""
    return testbed_small(runtime, workers=workers, streams=streams)


APP_FACTORIES = {
    "option-pricing": make_options_app,
    "ray-tracing": make_raytrace_app,
    "web-prefetch": make_prefetch_app,
}

CLUSTER_FACTORIES = {
    "option-pricing": options_cluster,
    "ray-tracing": raytrace_cluster,
    "web-prefetch": prefetch_cluster,
}
