"""Shared experiment plumbing: one isolated simulation per run."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime import SimulatedRuntime

__all__ = ["run_simulation"]


def run_simulation(
    body: Callable[[SimulatedRuntime], Any],
    until: Optional[float] = None,
) -> Any:
    """Run ``body`` as the root process of a fresh simulated runtime.

    The kernel is always shut down afterwards (no leaked threads across
    sweep points), and process errors re-raise in the caller.
    """
    runtime = SimulatedRuntime()
    try:
        proc = runtime.kernel.spawn(lambda: body(runtime), name="experiment")
        if until is not None:
            runtime.kernel.run(until=until)
        runtime.kernel.run_until_idle()
        if proc.error is not None:  # pragma: no cover - kernel re-raises first
            raise proc.error
        if not proc.finished:
            raise RuntimeError("experiment root process never completed")
        return proc.result
    finally:
        runtime.shutdown()
