"""One-call regeneration of the paper's full evaluation.

Used by ``examples/reproduce_paper.py`` and handy in notebooks: runs all
experiments and renders the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.adaptation import AdaptationResult, adaptation_experiment
from repro.experiments.calibration import (
    APP_FACTORIES,
    CLUSTER_FACTORIES,
    MAX_WORKERS,
)
from repro.experiments.classify import AppClassification, classify_applications, format_table
from repro.experiments.dynamics import DynamicsResult, dynamics_experiment
from repro.experiments.scalability import ScalabilityResult, scalability_experiment

__all__ = ["EvaluationReport", "run_full_evaluation"]


@dataclass
class EvaluationReport:
    """Everything §5 of the paper reports, regenerated."""

    scalability: dict[str, ScalabilityResult] = field(default_factory=dict)
    adaptation: dict[str, AdaptationResult] = field(default_factory=dict)
    dynamics: dict[str, DynamicsResult] = field(default_factory=dict)
    classification: list[AppClassification] = field(default_factory=list)

    def render(self) -> str:
        sections = []
        figure = 6
        for app_id, sweep in self.scalability.items():
            sections.append(f"=== Figure {figure}: {sweep.format_table()}")
            figure += 1
        figure = 9
        for app_id, result in self.adaptation.items():
            sections.append(
                f"=== Figure {figure}(b): {result.format_table()}\n"
                f"    signal cycle: {' → '.join(result.signals_in_order)}; "
                f"class loads: {result.class_loads}"
            )
            figure += 1
        for app_id, result in self.dynamics.items():
            sections.append(f"=== Experiment 3: {result.format_table()}")
        if self.classification:
            sections.append("=== " + format_table(self.classification))
        return "\n\n".join(sections)


def run_full_evaluation(
    scalability: bool = True,
    adaptation: bool = True,
    dynamics: bool = True,
    classification: bool = True,
    progress=None,
) -> EvaluationReport:
    """Regenerate every experiment; ``progress(msg)`` reports stages."""
    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = EvaluationReport()
    for app_id in APP_FACTORIES:
        app_factory = APP_FACTORIES[app_id]
        cluster_factory = CLUSTER_FACTORIES[app_id]
        if scalability:
            note(f"scalability sweep — {app_id}")
            report.scalability[app_id] = scalability_experiment(
                app_factory, cluster_factory,
                list(range(1, MAX_WORKERS[app_id] + 1)),
            )
        if adaptation:
            note(f"adaptation protocol — {app_id}")
            report.adaptation[app_id] = adaptation_experiment(
                app_factory, cluster_factory
            )
        if dynamics:
            note(f"dynamic behaviour — {app_id}")
            report.dynamics[app_id] = dynamics_experiment(
                app_factory, cluster_factory,
                workers=4 if app_id != "option-pricing" else 8,
            )
    if classification:
        note("Table 2 classification")
        report.classification = classify_applications()
    return report
