"""Experiment harnesses reproducing the paper's evaluation (§5).

* :mod:`scalability` — Experiment 1 (Figs 6, 7, 8): Max Worker Time,
  Parallel Time, Task Planning, Task Aggregation vs. number of workers.
* :mod:`adaptation` — Experiment 2 (Figs 9, 10, 11): CPU-usage history
  under scripted load and per-signal reaction latencies.
* :mod:`dynamics` — Experiment 3: behaviour with 0 %/25 %/50 % of the
  workers loaded.
* :mod:`classify` — Table 2: measured application classification.
* :mod:`calibration` — testbed wiring and the calibrated constants
  (documented in DESIGN.md §5).
* :mod:`report` — plain-text tables/series matching the paper's rows.
"""

from repro.experiments.calibration import (
    APP_FACTORIES,
    CLUSTER_FACTORIES,
    MAX_WORKERS,
    make_options_app,
    make_prefetch_app,
    make_raytrace_app,
    options_cluster,
    prefetch_cluster,
    raytrace_cluster,
)
from repro.experiments.harness import run_simulation
from repro.experiments.scalability import ScalabilityResult, scalability_experiment
from repro.experiments.adaptation import AdaptationResult, adaptation_experiment
from repro.experiments.dynamics import DynamicsResult, dynamics_experiment
from repro.experiments.classify import classify_applications
from repro.experiments.chaos import (
    ChaosResult,
    CoordinationChaosResult,
    chaos_experiment,
    coordination_chaos_experiment,
    verify_chaos_determinism,
    verify_coordination_determinism,
)

__all__ = [
    "APP_FACTORIES",
    "CLUSTER_FACTORIES",
    "MAX_WORKERS",
    "run_simulation",
    "scalability_experiment",
    "ScalabilityResult",
    "adaptation_experiment",
    "AdaptationResult",
    "dynamics_experiment",
    "DynamicsResult",
    "classify_applications",
    "ChaosResult",
    "CoordinationChaosResult",
    "chaos_experiment",
    "coordination_chaos_experiment",
    "verify_chaos_determinism",
    "verify_coordination_determinism",
    "make_options_app",
    "make_raytrace_app",
    "make_prefetch_app",
    "options_cluster",
    "raytrace_cluster",
    "prefetch_cluster",
]
