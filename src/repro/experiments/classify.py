"""Table 2: classification of the evaluated applications.

The paper classifies the three applications by scalability, CPU needs,
memory requirements and task dependency.  Here the classification is
*measured*: speedup curves from the scalability experiment, CPU cost from
the task cost model, memory from actual serialized task/result sizes, and
task dependency from the application's structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.prefetch import PrefetchApplication
from repro.core.application import Application
from repro.experiments.calibration import (
    APP_FACTORIES,
    CLUSTER_FACTORIES,
    MAX_WORKERS,
)
from repro.experiments.scalability import scalability_experiment
from repro.util.serialization import serialized_size

__all__ = ["AppClassification", "classify_applications", "classify_one"]


@dataclass(frozen=True)
class AppClassification:
    app_id: str
    scalability: str          # High / Medium / Low
    speedup_at_max: float
    cpu: str                  # High / Adaptable / Low
    task_cost_ms: float
    memory: str               # High / Low
    payload_bytes: int
    task_dependency: bool

    def as_row(self) -> str:
        return (
            f"{self.app_id:>16} {self.scalability:>12} "
            f"({self.speedup_at_max:>4.1f}x) {self.cpu:>10} "
            f"{self.memory:>7} {'Yes' if self.task_dependency else 'No':>11}"
        )


def _scalability_grade(row, planning_cpu: float, aggregation_cpu: float) -> str:
    """Grade by what bounds the run at the full cluster size.

    * compute-bound (neither master phase dominates the CPU budget) →
      **High**: adding workers keeps helping;
    * planning-bound → **Medium**: the ceiling moves with task
      granularity ("adaptable depending on number of simulations");
    * aggregation-bound → **Low**: serial recomposition caps speedup
      regardless of workers (the paper's pre-fetching verdict).
    """
    compute_wall = row.max_worker_ms
    master_cpu = max(planning_cpu, aggregation_cpu)
    if master_cpu < 0.5 * compute_wall:
        return "High"
    return "Medium" if planning_cpu >= aggregation_cpu else "Low"


def _cpu_grade(app: Application, task_cost: float) -> str:
    if isinstance(app, type(APP_FACTORIES["option-pricing"]())):
        # "Adaptable depending on number of simulations"
        return "Adaptable"
    return "High" if task_cost >= 2000.0 else "Low"


def classify_one(app_id: str, worker_counts: list[int] | None = None) -> AppClassification:
    """Measure one application's Table 2 row."""
    app_factory = APP_FACTORIES[app_id]
    cluster_factory = CLUSTER_FACTORIES[app_id]
    max_workers = MAX_WORKERS[app_id]
    if worker_counts is None:
        worker_counts = [1, max_workers]

    sweep = scalability_experiment(app_factory, cluster_factory, worker_counts)
    speedup = dict(sweep.speedups())[worker_counts[-1]]

    app = app_factory()
    tasks = app.plan()
    task_cost = max(app.task_cost_ms(t) for t in tasks)
    planning_cpu = sum(app.planning_cost_ms(t) for t in tasks)
    aggregation_cpu = sum(app.aggregation_cost_ms(t.task_id, None) for t in tasks)
    payload_bytes = max(serialized_size(t.payload) for t in tasks)
    # Results count too: the ray tracer returns "relatively large" arrays.
    sample_result = app.execute(tasks[0].payload)
    payload_bytes = max(payload_bytes, serialized_size(sample_result))

    return AppClassification(
        app_id=app_id,
        scalability=_scalability_grade(sweep.rows[-1], planning_cpu, aggregation_cpu),
        speedup_at_max=speedup,
        cpu=_cpu_grade(app, task_cost),
        task_cost_ms=task_cost,
        memory="High" if payload_bytes >= 32_768 else "Low",
        payload_bytes=payload_bytes,
        task_dependency=isinstance(app, PrefetchApplication),
    )


def classify_applications() -> list[AppClassification]:
    """Measured Table 2 for all three applications."""
    return [classify_one(app_id) for app_id in APP_FACTORIES]


def format_table(rows: list[AppClassification]) -> str:
    header = (
        f"{'application':>16} {'scalability':>12} {'':>7} {'CPU':>10} "
        f"{'memory':>7} {'task dep.':>11}"
    )
    return "\n".join(["Table 2 — application classification (measured)",
                      header, "-" * len(header)] + [r.as_row() for r in rows])
