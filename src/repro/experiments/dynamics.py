"""Experiment 3: dynamic worker behaviour under varying load (§5.2.3).

Three runs per application: 0 %, 25 % and 50 % of the workers loaded
(the saturating load simulator runs on them throughout).  Measured:

* **Maximum Worker Time** — max worker computation time;
* **Maximum Master Overhead** — max instantaneous per-task planning/
  aggregation time at the master (expected ~constant across runs);
* **Task Planning and Aggregation Time** — total master phase time;
* **Total Parallel Time** — whole-application time at the master.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.application import Application
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import Cluster
from repro.node.loadgen import LoadSimulator2
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["DynamicsRow", "DynamicsResult", "dynamics_experiment"]


@dataclass(frozen=True)
class DynamicsRow:
    loaded_fraction: float
    loaded_workers: int
    max_worker_ms: float
    max_master_overhead_ms: float
    planning_plus_aggregation_ms: float
    total_parallel_ms: float


@dataclass
class DynamicsResult:
    app_id: str
    workers: int
    rows: list[DynamicsRow] = field(default_factory=list)

    def format_table(self) -> str:
        header = (
            f"{'loaded':>8} {'max worker (ms)':>16} {'max master ovh (ms)':>20} "
            f"{'plan+agg (ms)':>14} {'total parallel (ms)':>20}"
        )
        lines = [
            f"Dynamic worker behaviour — {self.app_id} ({self.workers} workers)",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row.loaded_fraction:>7.0%} {row.max_worker_ms:>16.0f} "
                f"{row.max_master_overhead_ms:>20.1f} "
                f"{row.planning_plus_aggregation_ms:>14.0f} "
                f"{row.total_parallel_ms:>20.0f}"
            )
        return "\n".join(lines)


def dynamics_experiment(
    app_factory: Callable[[], Application],
    cluster_factory: Callable[..., Cluster],
    workers: int = 4,
    loaded_fractions: tuple[float, ...] = (0.0, 0.25, 0.5),
    poll_interval_ms: float = 500.0,
    seed: int = 0,
) -> DynamicsResult:
    """Run the application with a fraction of the workers kept busy."""
    app_id = app_factory().app_id
    result = DynamicsResult(app_id=app_id, workers=workers)

    for fraction in loaded_fractions:
        n_loaded = math.floor(workers * fraction + 1e-9)

        def body(runtime: SimulatedRuntime, n_loaded=n_loaded, fraction=fraction):
            cluster = cluster_factory(
                runtime, workers=workers, streams=RandomStreams(seed)
            )
            framework = AdaptiveClusterFramework(
                runtime, cluster, app_factory(),
                FrameworkConfig(poll_interval_ms=poll_interval_ms,
                                compute_real=False),
            )
            # "the load simulator used to simulate high CPU loads [is] run
            # on 25% and 50% of available workers".
            for node in cluster.workers[:n_loaded]:
                LoadSimulator2(runtime, node).start()
            framework.start()
            report = framework.run()
            row = DynamicsRow(
                loaded_fraction=fraction,
                loaded_workers=n_loaded,
                max_worker_ms=framework.max_worker_time_ms(),
                max_master_overhead_ms=report.max_task_overhead_ms,
                planning_plus_aggregation_ms=report.planning_plus_aggregation_ms,
                total_parallel_ms=report.parallel_ms,
            )
            framework.shutdown()
            return row

        result.rows.append(run_simulation(body))
    return result
