"""Chaos experiment: self-healing under a seeded fault campaign.

The acceptance scenario for the robustness layer: a deployment with
reconnecting proxies, transactional takes and poison-task quarantine runs
a bag-of-tasks job while a :class:`~repro.faults.FaultPlan` crashes a
worker, flaps a link, and restarts the space server — plus one poison
task whose application code always raises.  The run must still terminate
with the correct solution over the non-poison tasks, the poison task
dead-lettered in the :class:`~repro.core.master.MasterReport`, and an
identical recovery-event trace when replayed from the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.application import Application, ClassLoadProfile, Task
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.core.master import MasterReport
from repro.experiments.harness import run_simulation
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.node.cluster import testbed_small
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["PoisonedSquares", "ChaosResult", "chaos_experiment",
           "default_chaos_plan", "verify_chaos_determinism"]


class PoisonedSquares(Application):
    """Sum of squares with designated poison tasks that always raise.

    Unlike the strict toy app, ``aggregate`` tolerates a partial result
    set — the partial-result policy is the point of the experiment."""

    app_id = "chaos-squares"

    def __init__(self, n: int = 24, poison: Sequence[int] = (7,),
                 task_cost: float = 800.0) -> None:
        self.n = n
        self.poison = frozenset(poison)
        self._task_cost = task_cost

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload=i) for i in range(self.n)]

    def execute(self, payload: Any) -> Any:
        if payload in self.poison:
            raise RuntimeError(f"poison task {payload}")
        return payload * payload

    def aggregate(self, results: dict[int, Any]) -> Any:
        return sum(results.values())

    def expected_solution(self) -> int:
        """The correct sum over every task that can possibly complete."""
        return sum(i * i for i in range(self.n) if i not in self.poison)

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost

    def planning_cost_ms(self, task: Task) -> float:
        return 2.0

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return 1.0

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(work_ref_ms=100.0, demand_percent=80.0,
                                bundle_bytes=50_000)


#: The recovery-observability events that make up the replayable trace.
TRACE_EVENTS = frozenset({
    "fault-injected", "fault-healed",
    "proxy-reconnected", "proxy-retry",
    "worker-reconnect", "worker-recovered", "worker-gave-up", "worker-error",
    "task-requeued", "dead-letter", "dead-letter-received",
    "task-replicated", "master-gave-up",
})


@dataclass
class ChaosResult:
    """Everything the chaos acceptance criteria check."""

    seed: int
    report: MasterReport
    expected_solution: int
    trace: list[tuple[float, str, tuple]] = field(default_factory=list)
    faults_injected: int = 0
    faults_healed: int = 0

    @property
    def correct(self) -> bool:
        return self.report.solution == self.expected_solution

    def events_named(self, name: str) -> list[tuple[float, tuple]]:
        return [(t, p) for t, n, p in self.trace if n == name]

    def format_summary(self) -> str:
        r = self.report
        lines = [
            f"Chaos run — seed {self.seed}",
            f"  solution   : {r.solution} (expected {self.expected_solution}, "
            f"{'OK' if self.correct else 'WRONG'})",
            f"  complete   : {r.complete}; dead letters: {dict(r.dead_letters)}",
            f"  faults     : {self.faults_injected} injected, "
            f"{self.faults_healed} healed",
            f"  duplicates : {r.duplicate_results}; replicas: {r.replicated_tasks}",
            f"  trace      : {len(self.trace)} recovery events",
        ]
        for t, name, payload in self.trace:
            lines.append(f"    t={t:>9.1f}ms {name:<20} {dict(payload)}")
        return "\n".join(lines)


def default_chaos_plan(hosts: Sequence[str]) -> FaultPlan:
    """The hand-written acceptance campaign: one of each failure mode."""
    hosts = list(hosts)
    plan = FaultPlan()
    if len(hosts) > 0:
        plan.add(FaultEvent(2_500.0, FaultKind.WORKER_CRASH, target=hosts[0]))
    if len(hosts) > 1:
        plan.add(FaultEvent(4_000.0, FaultKind.LINK_FLAP, target=hosts[1],
                            duration_ms=1_500.0))
    plan.add(FaultEvent(6_000.0, FaultKind.SERVER_RESTART, duration_ms=800.0))
    return plan


def chaos_experiment(
    seed: int = 42,
    workers: int = 4,
    tasks: int = 24,
    poison: Sequence[int] = (7,),
    plan: Optional[FaultPlan] = None,
    random_plan: bool = False,
    give_up_after_ms: float = 30_000.0,
) -> ChaosResult:
    """Run the acceptance scenario; fully replayable from ``seed``."""

    def body(runtime: SimulatedRuntime) -> ChaosResult:
        streams = RandomStreams(seed)
        cluster = testbed_small(runtime, workers=workers, streams=streams)
        app = PoisonedSquares(n=tasks, poison=poison)
        framework = AdaptiveClusterFramework(
            runtime, cluster, app,
            FrameworkConfig(
                monitoring=False,           # faults drive the run, not load
                compute_real=True,
                transactional_takes=True,   # crash-safe takes
                eager_scheduling=True,      # replicate around dead workers
                straggler_timeout_ms=2_000.0,
                max_task_attempts=2,
                rpc_timeout_ms=1_000.0,     # notice a partitioned server fast
                dead_letter_poll_ms=500.0,
                give_up_after_ms=give_up_after_ms,
            ),
        )
        framework.start()
        framework.start_all_workers()
        hostnames = [node.hostname for node in cluster.workers]
        campaign = plan
        if campaign is None:
            campaign = (FaultPlan.generate(streams.stream("fault-plan"),
                                           hostnames)
                        if random_plan else default_chaos_plan(hostnames))
        injector = FaultInjector.for_framework(
            framework, campaign, rng=streams.stream("chaos-net"))
        injector.arm()
        report = framework.master.run()
        injector.disarm()       # late plan entries must not hit the teardown
        framework.shutdown()
        trace = [
            (t, name, tuple(sorted(payload.items())))
            for t, name, payload in framework.metrics.events
            if name in TRACE_EVENTS
        ]
        return ChaosResult(
            seed=seed,
            report=report,
            expected_solution=app.expected_solution(),
            trace=trace,
            faults_injected=injector.injected,
            faults_healed=injector.healed,
        )

    return run_simulation(body)


def verify_chaos_determinism(seed: int = 42, **kwargs: Any) -> bool:
    """Run the campaign twice; True iff the recovery traces are identical."""
    first = chaos_experiment(seed=seed, **kwargs)
    second = chaos_experiment(seed=seed, **kwargs)
    return first.trace == second.trace and \
        first.report.solution == second.report.solution
