"""Chaos experiment: self-healing under a seeded fault campaign.

The acceptance scenario for the robustness layer: a deployment with
reconnecting proxies, transactional takes and poison-task quarantine runs
a bag-of-tasks job while a :class:`~repro.faults.FaultPlan` crashes a
worker, flaps a link, and restarts the space server — plus one poison
task whose application code always raises.  The run must still terminate
with the correct solution over the non-poison tasks, the poison task
dead-lettered in the :class:`~repro.core.master.MasterReport`, and an
identical recovery-event trace when replayed from the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.application import Application, ClassLoadProfile, Task
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.core.master import MasterReport
from repro.experiments.harness import run_simulation
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.node.cluster import testbed_small
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams
from repro.verify import HistoryReport, check_history

__all__ = ["PoisonedSquares", "TenantSquares", "ChaosResult",
           "chaos_experiment", "default_chaos_plan",
           "verify_chaos_determinism",
           "CoordinationChaosResult", "coordination_chaos_plan",
           "coordination_chaos_experiment",
           "verify_coordination_determinism", "NEMESIS_FAULTS",
           "ContentionResult", "contention_chaos_experiment",
           "contention_isolation", "verify_contention_determinism",
           "TENANT_STRIDE"]


class PoisonedSquares(Application):
    """Sum of squares with designated poison tasks that always raise.

    Unlike the strict toy app, ``aggregate`` tolerates a partial result
    set — the partial-result policy is the point of the experiment."""

    app_id = "chaos-squares"

    def __init__(self, n: int = 24, poison: Sequence[int] = (7,),
                 task_cost: float = 800.0) -> None:
        self.n = n
        self.poison = frozenset(poison)
        self._task_cost = task_cost

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload=i) for i in range(self.n)]

    def execute(self, payload: Any) -> Any:
        if payload in self.poison:
            raise RuntimeError(f"poison task {payload}")
        return payload * payload

    def aggregate(self, results: dict[int, Any]) -> Any:
        return sum(results.values())

    def expected_solution(self) -> int:
        """The correct sum over every task that can possibly complete."""
        return sum(i * i for i in range(self.n) if i not in self.poison)

    def task_cost_ms(self, task: Task) -> float:
        return self._task_cost

    def planning_cost_ms(self, task: Task) -> float:
        return 2.0

    def aggregation_cost_ms(self, task_id: int, result: Any) -> float:
        return 1.0

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(work_ref_ms=100.0, demand_percent=80.0,
                                bundle_bytes=50_000)


#: The recovery-observability events that make up the replayable trace.
TRACE_EVENTS = frozenset({
    "fault-injected", "fault-healed",
    "proxy-reconnected", "proxy-retry",
    "worker-reconnect", "worker-recovered", "worker-gave-up", "worker-error",
    "task-requeued", "dead-letter", "dead-letter-received",
    "task-replicated", "master-gave-up",
    # coordinator faults (durability / failover / checkpoint-resume)
    "space-primary-killed", "space-shard-killed",
    "standby-caught-up", "standby-promoted",
    "primary-heartbeat-miss", "failover-complete", "proxy-rediscovered",
    "master-kill-injected", "master-killed", "master-restarted",
    "master-checkpoint", "master-resumed", "master-space-retry",
    "txn-lease-expired", "task-txn-expired", "stale-sample",
    # split-brain fencing (epoch fences, partition/pause/gray nemesis)
    "primary-fenced", "standby-rejoining", "proxy-fenced",
    # multi-tenancy (admission control, fair share, preemption)
    "admission-rejected", "master-admission-retry", "tenant-preempted",
})


@dataclass
class ChaosResult:
    """Everything the chaos acceptance criteria check."""

    seed: int
    report: MasterReport
    expected_solution: int
    trace: list[tuple[float, str, tuple]] = field(default_factory=list)
    faults_injected: int = 0
    faults_healed: int = 0
    #: Telemetry artifacts when the campaign ran with ``trace=True``:
    #: the tracer (export via ``write_chrome``/``write_jsonl``) and the
    #: final Prometheus registry dump.  Deliberately excluded from the
    #: determinism comparison — that compares the recovery-event trace.
    tracer: Any = None
    prometheus: str = ""
    #: Consistency-checker verdict over the recorded op history.
    history_report: Optional[HistoryReport] = None
    #: RPCs the epoch fence rejected across every server incarnation.
    fenced_rpcs: int = 0
    #: The framework's black-box flight recorder — its ``bundles`` hold
    #: any postmortems dumped during the campaign (promotions, gate
    #: failures); the CLI writes them to disk for CI to upload.
    flight: Any = None

    @property
    def postmortems(self) -> list:
        return list(self.flight.bundles) if self.flight is not None else []

    @property
    def correct(self) -> bool:
        return self.report.solution == self.expected_solution

    @property
    def consistent(self) -> bool:
        """True iff the history checker found no violations."""
        return self.history_report is None or self.history_report.ok

    def events_named(self, name: str) -> list[tuple[float, tuple]]:
        return [(t, p) for t, n, p in self.trace if n == name]

    def format_summary(self) -> str:
        r = self.report
        lines = [
            f"Chaos run — seed {self.seed}",
            f"  solution   : {r.solution} (expected {self.expected_solution}, "
            f"{'OK' if self.correct else 'WRONG'})",
            f"  complete   : {r.complete}; dead letters: {dict(r.dead_letters)}",
            f"  faults     : {self.faults_injected} injected, "
            f"{self.faults_healed} healed",
            f"  duplicates : {r.duplicate_results}; replicas: {r.replicated_tasks}",
            f"  fenced     : {self.fenced_rpcs} stale-epoch RPCs rejected",
            f"  trace      : {len(self.trace)} recovery events",
        ]
        if self.history_report is not None:
            lines.append(
                "  " + self.history_report.summary().replace("\n", "\n  "))
        for t, name, payload in self.trace:
            lines.append(f"    t={t:>9.1f}ms {name:<20} {dict(payload)}")
        return "\n".join(lines)


def default_chaos_plan(hosts: Sequence[str]) -> FaultPlan:
    """The hand-written acceptance campaign: one of each failure mode."""
    hosts = list(hosts)
    plan = FaultPlan()
    if len(hosts) > 0:
        plan.add(FaultEvent(2_500.0, FaultKind.WORKER_CRASH, target=hosts[0]))
    if len(hosts) > 1:
        plan.add(FaultEvent(4_000.0, FaultKind.LINK_FLAP, target=hosts[1],
                            duration_ms=1_500.0))
    plan.add(FaultEvent(6_000.0, FaultKind.SERVER_RESTART, duration_ms=800.0))
    return plan


def chaos_experiment(
    seed: int = 42,
    workers: int = 4,
    tasks: int = 24,
    poison: Sequence[int] = (7,),
    plan: Optional[FaultPlan] = None,
    random_plan: bool = False,
    give_up_after_ms: float = 30_000.0,
    prefetch: int = 1,
    trace: bool = False,
    shards: int = 1,
    codec: str = "pickle",
) -> ChaosResult:
    """Run the acceptance scenario; fully replayable from ``seed``.

    ``prefetch`` > 1 runs the whole pipelined data path (worker batch
    cycles, batched RPC, master batch seed/drain) under the same fault
    campaign — faults then land mid-batch as well as mid-task.

    ``shards`` > 1 partitions the space (all shard servers co-hosted on
    the master node) — the job result must be byte-identical to the
    unsharded run, since routing never changes *what* completes, only
    *where* entries live.

    ``trace`` records telemetry spans alongside the campaign.  Trace IDs
    travel in the entries either way, so the virtual timeline — and hence
    the replayable recovery trace — is identical with it on or off.
    """

    def body(runtime: SimulatedRuntime) -> ChaosResult:
        streams = RandomStreams(seed)
        cluster = testbed_small(runtime, workers=workers, streams=streams)
        app = PoisonedSquares(n=tasks, poison=poison)
        framework = AdaptiveClusterFramework(
            runtime, cluster, app,
            FrameworkConfig(
                monitoring=False,           # faults drive the run, not load
                compute_real=True,
                transactional_takes=True,   # crash-safe takes
                eager_scheduling=True,      # replicate around dead workers
                straggler_timeout_ms=2_000.0,
                max_task_attempts=2,
                rpc_timeout_ms=1_000.0,     # notice a partitioned server fast
                dead_letter_poll_ms=500.0,
                give_up_after_ms=give_up_after_ms,
                worker_prefetch=max(1, prefetch),
                master_seed_batch=max(1, prefetch),
                master_drain_batch=max(1, prefetch),
                trace=trace,
                shards=max(1, shards),
                record_history=True,
                codec=codec,
            ),
        )
        framework.start()
        framework.start_all_workers()
        hostnames = [node.hostname for node in cluster.workers]
        campaign = plan
        if campaign is None:
            campaign = (FaultPlan.generate(streams.stream("fault-plan"),
                                           hostnames)
                        if random_plan else default_chaos_plan(hostnames))
        if framework.flight is not None:
            framework.flight.fault_plan = campaign.to_dict()
        injector = FaultInjector.for_framework(
            framework, campaign, rng=streams.stream("chaos-net"))
        injector.arm()
        report = framework.master.run()
        injector.disarm()       # late plan entries must not hit the teardown
        framework.shutdown()
        history_report = None
        if framework.history is not None:
            history_report = check_history(framework.history,
                                           framework.final_contents())
        if framework.flight is not None:
            # Gate failures freeze the black box: the bundle names the
            # campaign and holds the trace/metrics/history tail around
            # the violation, so a red CI cell ships its own evidence.
            if history_report is not None and not history_report.ok:
                framework.flight.dump("checker-violation")
            if report.solution != app.expected_solution():
                framework.flight.dump("wrong-solution")
        events = [
            (t, name, tuple(sorted(payload.items())))
            for t, name, payload in framework.metrics.events
            if name in TRACE_EVENTS
        ]
        return ChaosResult(
            seed=seed,
            report=report,
            expected_solution=app.expected_solution(),
            trace=events,
            faults_injected=injector.injected,
            faults_healed=injector.healed,
            tracer=framework.tracer,
            prometheus=framework.telemetry.prometheus_text(),
            history_report=history_report,
            fenced_rpcs=framework.total_fenced_rpcs(),
            flight=framework.flight,
        )

    return run_simulation(body)


def verify_chaos_determinism(seed: int = 42, **kwargs: Any) -> bool:
    """Run the campaign twice; True iff the recovery traces are identical."""
    first = chaos_experiment(seed=seed, **kwargs)
    second = chaos_experiment(seed=seed, **kwargs)
    return first.trace == second.trace and \
        first.report.solution == second.report.solution


# -- coordinator chaos: survive the space primary and the master itself -------


@dataclass
class CoordinationChaosResult:
    """Acceptance data for the coordinator-fault campaign."""

    seed: int
    faults: tuple[str, ...]
    report: MasterReport
    expected_solution: int
    trace: list[tuple[float, str, tuple]] = field(default_factory=list)
    #: (task_id, worker) per result-aggregated event, in order.
    aggregations: list[tuple[float, int]] = field(default_factory=list)
    faults_injected: int = 0
    master_restarts: int = 0
    #: Telemetry artifacts (see :class:`ChaosResult`).
    tracer: Any = None
    prometheus: str = ""
    #: Consistency-checker verdict over the recorded op history.
    history_report: Optional[HistoryReport] = None
    #: RPCs the epoch fence rejected across every server incarnation.
    fenced_rpcs: int = 0
    #: Black-box flight recorder (see :class:`ChaosResult.flight`).
    flight: Any = None

    @property
    def postmortems(self) -> list:
        return list(self.flight.bundles) if self.flight is not None else []

    @property
    def correct(self) -> bool:
        return self.report.complete and \
            self.report.solution == self.expected_solution

    @property
    def consistent(self) -> bool:
        """True iff the history checker found no violations."""
        return self.history_report is None or self.history_report.ok

    def final_aggregations(self) -> dict[int, int]:
        """task_id → times aggregated by the *final* master incarnation.

        Aggregations a killed master made after its last checkpoint died
        with it and never reach the solution, so exactly-once is judged on
        the incarnation that actually produced the report.
        """
        restarts = [t for t, name, _ in self.trace if name == "master-restarted"]
        cutoff = restarts[-1] if restarts else float("-inf")
        counts: dict[int, int] = {}
        for t, task_id in self.aggregations:
            if t >= cutoff:
                counts[task_id] = counts.get(task_id, 0) + 1
        return counts

    @property
    def exactly_once(self) -> bool:
        """Complete, correct, and no task folded twice into the solution."""
        return self.correct and \
            all(n == 1 for n in self.final_aggregations().values())

    def events_named(self, name: str) -> list[tuple[float, tuple]]:
        return [(t, p) for t, n, p in self.trace if n == name]

    def format_summary(self) -> str:
        r = self.report
        dup_aggs = {tid: n for tid, n in self.final_aggregations().items()
                    if n != 1}
        lines = [
            f"Coordination chaos run — seed {self.seed}, "
            f"faults {list(self.faults)}",
            f"  solution    : {r.solution} (expected {self.expected_solution},"
            f" {'OK' if self.correct else 'WRONG'})",
            f"  complete    : {r.complete}; exactly-once: "
            f"{'yes' if self.exactly_once else f'NO {dup_aggs}'}",
            f"  restarts    : {self.master_restarts} master; checkpoints "
            f"{r.checkpoints_written}, resumed from seq {r.resumed_from_seq}",
            f"  faults      : {self.faults_injected} injected; duplicates "
            f"{r.duplicate_results}; replicas {r.replicated_tasks}",
            f"  fenced      : {self.fenced_rpcs} stale-epoch RPCs rejected",
            f"  trace       : {len(self.trace)} recovery events",
        ]
        if self.history_report is not None:
            lines.append(
                "  " + self.history_report.summary().replace("\n", "\n  "))
        for t, name, payload in self.trace:
            lines.append(f"    t={t:>9.1f}ms {name:<22} {dict(payload)}")
        return "\n".join(lines)


#: Nemesis fault kinds accepted by :func:`coordination_chaos_plan`, with
#: default durations.  Partition and pause outlive the primary lease
#: (``failover_heartbeat_ms * failover_max_misses`` = 750 ms by default)
#: so a mid-fault failover — and hence fencing — actually happens.
NEMESIS_FAULTS = {
    "partition": (FaultKind.PARTITION, 2_000.0),
    "pause": (FaultKind.PAUSE, 1_000.0),
    "gray-slow": (FaultKind.GRAY_SLOW, 3_000.0),
}


def coordination_chaos_plan(faults: Sequence[str],
                            first_at_ms: float = 3_000.0,
                            spacing_ms: float = 1_500.0,
                            slow_factor: float = 8.0) -> FaultPlan:
    """One coordinator fault per entry, spaced so each lands mid-run.

    Entries are ``"kill-primary-space"``, ``"kill-master"``,
    ``"kill-shard:<i>"`` (crash shard ``i``'s primary server), or one of
    the nemesis faults ``"partition"`` / ``"pause"`` / ``"gray-slow"``
    with an optional target suffix: ``"partition"`` or
    ``"partition:space"`` hit the (first) space host,
    ``"partition:shard:<i>"`` hits shard ``i``'s host, and any other
    suffix is a literal hostname (e.g. ``"pause:worker2"``).
    """
    plan = FaultPlan()
    kinds = {"kill-primary-space": FaultKind.KILL_PRIMARY_SPACE,
             "kill-master": FaultKind.KILL_MASTER}
    for index, fault in enumerate(faults):
        at_ms = first_at_ms + index * spacing_ms
        name, _, suffix = fault.partition(":")
        if name in NEMESIS_FAULTS:
            kind, duration_ms = NEMESIS_FAULTS[name]
            plan.add(FaultEvent(at_ms, kind, target=suffix or "space",
                                duration_ms=duration_ms,
                                factor=slow_factor))
        elif name == "kill-shard":
            plan.add(FaultEvent(at_ms, FaultKind.KILL_SHARD,
                                target=str(int(suffix))))
        else:
            plan.add(FaultEvent(at_ms, kinds[fault]))
    return plan


def coordination_chaos_experiment(
    seed: int = 42,
    workers: int = 4,
    tasks: int = 24,
    faults: Sequence[str] = ("kill-primary-space",),
    give_up_after_ms: float = 60_000.0,
    prefetch: int = 1,
    trace: bool = False,
    shards: int = 1,
    codec: str = "pickle",
) -> CoordinationChaosResult:
    """Kill the space primary and/or the master mid-run; the job must
    still complete every task exactly-once.  Replayable from ``seed``.

    With ``prefetch`` > 1 the coordinator faults hit the pipelined path:
    a worker's in-flight batch (several tasks under one transaction) is
    killed mid-swap and must revert or commit as a unit.

    ``shards`` > 1 partitions the space; ``"kill-shard:<i>"`` faults then
    crash one shard's primary and that shard's supervisor promotes its
    hot standby while the other shards keep serving."""
    faults = tuple(faults)

    def body(runtime: SimulatedRuntime) -> CoordinationChaosResult:
        streams = RandomStreams(seed)
        cluster = testbed_small(runtime, workers=workers, streams=streams)
        # No poison: exactly-once over *every* task is the criterion here.
        app = PoisonedSquares(n=tasks, poison=())
        framework = AdaptiveClusterFramework(
            runtime, cluster, app,
            FrameworkConfig(
                monitoring=False,
                compute_real=True,
                transactional_takes=True,
                task_txn_lease_ms=10_000.0,
                eager_scheduling=True,
                straggler_timeout_ms=2_000.0,
                max_task_attempts=2,
                rpc_timeout_ms=1_000.0,
                dead_letter_poll_ms=500.0,
                give_up_after_ms=give_up_after_ms,
                hot_standby=True,
                master_checkpoint_ms=1_000.0,
                master_restart_delay_ms=500.0,
                worker_prefetch=max(1, prefetch),
                master_seed_batch=max(1, prefetch),
                master_drain_batch=max(1, prefetch),
                trace=trace,
                shards=max(1, shards),
                # Sharded chaos spreads primaries off the master node:
                # "partition:shard:i" must be able to sever a primary
                # from its (master-hosted) supervisor, or split-brain
                # fencing has nothing to bite on.
                shard_placement="spread" if shards > 1 else "master",
                record_history=True,
                codec=codec,
            ),
        )
        framework.start()
        framework.start_all_workers()
        campaign = coordination_chaos_plan(faults)
        if framework.flight is not None:
            framework.flight.fault_plan = campaign.to_dict()
        injector = FaultInjector.for_framework(
            framework, campaign, rng=streams.stream("chaos-net"))
        injector.arm()
        report = framework.run_with_recovery()
        injector.disarm()
        framework.shutdown()
        history_report = None
        if framework.history is not None:
            history_report = check_history(framework.history,
                                           framework.final_contents())
        if framework.flight is not None:
            if history_report is not None and not history_report.ok:
                framework.flight.dump("checker-violation")
            if not (report.complete
                    and report.solution == app.expected_solution()):
                framework.flight.dump("wrong-solution")
        events = [
            (t, name, tuple(sorted(payload.items())))
            for t, name, payload in framework.metrics.events
            if name in TRACE_EVENTS
        ]
        aggregations = [
            (t, payload["task_id"])
            for t, name, payload in framework.metrics.events
            if name == "result-aggregated"
        ]
        return CoordinationChaosResult(
            seed=seed,
            faults=faults,
            report=report,
            expected_solution=app.expected_solution(),
            trace=events,
            aggregations=aggregations,
            faults_injected=injector.injected,
            master_restarts=framework.master_restarts,
            tracer=framework.tracer,
            prometheus=framework.telemetry.prometheus_text(),
            history_report=history_report,
            fenced_rpcs=framework.total_fenced_rpcs(),
            flight=framework.flight,
        )

    return run_simulation(body)


def verify_coordination_determinism(seed: int = 42, **kwargs: Any) -> bool:
    """Run the coordinator campaign twice; True iff byte-identical traces."""
    first = coordination_chaos_experiment(seed=seed, **kwargs)
    second = coordination_chaos_experiment(seed=seed, **kwargs)
    return first.trace == second.trace and \
        first.report.solution == second.report.solution and \
        first.aggregations == second.aggregations


# -- multi-tenant contention: admission, fair share, preemption ----------------


#: Task-id namespace width per tenant.  Task identity is
#: ``(app_id, task_id)`` and every tenant shares the app_id, so tenant
#: ``i`` plans ids ``[i * TENANT_STRIDE, i * TENANT_STRIDE + n)`` —
#: a collision would corrupt both the master's result dedup and the
#: history checker's entry keys.
TENANT_STRIDE = 1_000_000

VICTIM = "victim"
AGGRESSOR = "aggressor"


class TenantSquares(PoisonedSquares):
    """One tenant's slice of the shared sum-of-squares job family.

    Same ``app_id`` as every other tenant (workers load exactly one
    class set), disjoint task-id range (``base`` must be a multiple of
    :data:`TENANT_STRIDE`)."""

    def __init__(self, base: int, n: int, task_cost: float = 400.0,
                 poison: Sequence[int] = ()) -> None:
        super().__init__(n=n, poison=poison, task_cost=task_cost)
        self.base = base

    def plan(self) -> list[Task]:
        return [Task(task_id=self.base + i, payload=self.base + i)
                for i in range(self.n)]

    def expected_solution(self) -> int:
        return sum((self.base + i) ** 2 for i in range(self.n)
                   if (self.base + i) not in self.poison)


@dataclass
class ContentionResult:
    """Acceptance data for the multi-tenant contention campaign."""

    seed: int
    tenants: int
    aggressor: bool
    #: tenant → its master's report (absent if the run raised).
    reports: dict[str, MasterReport] = field(default_factory=dict)
    #: tenant → expected solution over its task slice.
    expected: dict[str, int] = field(default_factory=dict)
    #: tenant → "ExcType: message" for masters that failed — the
    #: aggressor legitimately dies here when admission starves it out.
    errors: dict[str, str] = field(default_factory=dict)
    trace: list[tuple[float, str, tuple]] = field(default_factory=list)
    #: tenant → fair-share take grants (space DRR dispatcher).
    grants: dict[str, int] = field(default_factory=dict)
    #: Admission totals over every server: checked/admitted/rejected/shed.
    admission_totals: dict[str, int] = field(default_factory=dict)
    #: The aggressor's own admitted/rejected/shed counters.
    aggressor_admission: dict[str, int] = field(default_factory=dict)
    preemptions: int = 0
    tasks_released: int = 0
    faults_injected: int = 0
    #: Simulated timestamps of the victim's result aggregations — the
    #: overload microbench derives stall percentiles from the gaps.
    victim_completions_ms: list[float] = field(default_factory=list)
    tracer: Any = None
    prometheus: str = ""
    history_report: Optional[HistoryReport] = None
    #: Black-box flight recorder (see :class:`ChaosResult.flight`).
    flight: Any = None

    @property
    def postmortems(self) -> list:
        return list(self.flight.bundles) if self.flight is not None else []

    @property
    def victim_report(self) -> Optional[MasterReport]:
        return self.reports.get(VICTIM)

    @property
    def victim_throughput_per_s(self) -> float:
        """Victim tasks completed per wall-clock second of its run."""
        report = self.victim_report
        if report is None or report.parallel_ms <= 0:
            return 0.0
        return report.task_count / (report.parallel_ms / 1000.0)

    @property
    def victim_p99_gap_ms(self) -> float:
        """p99 of the gaps between consecutive victim completions.

        The stall measure for the overload benchmark: an aggressor that
        starves the victim shows up as long silent stretches between its
        results even when the final throughput number survives."""
        times = sorted(self.victim_completions_ms)
        if len(times) < 2:
            return 0.0
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        return gaps[min(len(gaps) - 1, int(0.99 * len(gaps)))]

    @property
    def correct(self) -> bool:
        """Every non-aggressor tenant finished completely and correctly.

        The aggressor is exempt: being rejected, shed or starved out is
        the admission controller doing its job, not a failure."""
        for name, want in self.expected.items():
            if name == AGGRESSOR:
                continue
            report = self.reports.get(name)
            if report is None or not report.complete \
                    or report.solution != want:
                return False
        return True

    @property
    def consistent(self) -> bool:
        """True iff the history checker found no violations — including
        check 4: no admission-rejected write left a side effect."""
        return self.history_report is None or self.history_report.ok

    def _grants_summary(self) -> str:
        """Per-tenant grants, folding a large bystander fleet into one
        aggregate so the 128-tenant summary stays one line."""
        grants = dict(sorted(self.grants.items()))
        if len(grants) <= 8:
            return str(grants)
        named = {k: v for k, v in grants.items() if k in (VICTIM, AGGRESSOR)}
        rest = [v for k, v in grants.items() if k not in named]
        return (f"{named} + {len(rest)} bystanders "
                f"({sum(rest)} grants)")

    def format_summary(self) -> str:
        lines = [
            f"Contention run — seed {self.seed}, {self.tenants} tenants, "
            f"aggressor {'on' if self.aggressor else 'off'}",
            f"  victims    : {'all correct' if self.correct else 'WRONG'}; "
            f"victim throughput {self.victim_throughput_per_s:.2f} tasks/s",
            f"  admission  : {self.admission_totals}",
            f"  aggressor  : {self.aggressor_admission} "
            f"{('-- ' + self.errors[AGGRESSOR]) if AGGRESSOR in self.errors else ''}",
            f"  fair share : grants {self._grants_summary()}",
            f"  preemption : {self.preemptions} preemptions, "
            f"{self.tasks_released} tasks released",
            f"  trace      : {len(self.trace)} events",
        ]
        if self.history_report is not None:
            lines.append(
                "  " + self.history_report.summary().replace("\n", "\n  "))
        return "\n".join(lines)


def contention_chaos_experiment(
    seed: int = 42,
    workers: int = 4,
    tenants: int = 8,
    victim_tasks: int = 24,
    victim_task_cost: float = 400.0,
    bystander_tasks: int = 2,
    bystander_task_cost: float = 100.0,
    aggressor: bool = True,
    aggressor_quota: int = 4,
    aggressor_rate_per_s: float = 10.0,
    give_up_after_ms: float = 60_000.0,
    prefetch: int = 2,
    trace: bool = False,
    shards: int = 1,
    preemption_poll_ms: float = 500.0,
    fault_plan: Optional[FaultPlan] = None,
    codec: str = "pickle",
) -> ContentionResult:
    """``tenants`` masters share one deployment; one floods 10x its quota.

    The tenant roster: one high-priority *victim* (the deployment's own
    master, ``victim_tasks`` real tasks), one low-priority *aggressor*
    flooding ``10 * aggressor_quota`` tasks against a quota of
    ``aggressor_quota`` in flight plus a token-bucket rate limit, and
    ``tenants - 2`` bystanders with ``bystander_tasks`` each.  Admission
    control (quota + rate + watermark shed), weighted fair-share
    dispatch (the victim's share outweighs the rest combined) and
    priority preemption together must keep every non-aggressor tenant
    complete and correct — the isolation *ratio* against a no-aggressor
    baseline is computed by :func:`contention_isolation`.

    Fully replayable from ``seed``: tenant spawn order, DRR tenant
    order and admission decisions are all deterministic under the
    simulated clock.
    """
    if tenants < 2:
        raise ValueError(f"tenants must be >= 2 (victim + aggressor slot), "
                         f"got {tenants}")

    def body(runtime: SimulatedRuntime) -> ContentionResult:
        streams = RandomStreams(seed)
        cluster = testbed_small(runtime, workers=workers, streams=streams)
        victim_app = TenantSquares(base=0, n=victim_tasks,
                                   task_cost=victim_task_cost)
        framework = AdaptiveClusterFramework(
            runtime, cluster, victim_app,
            FrameworkConfig(
                monitoring=False,
                compute_real=True,
                transactional_takes=True,
                rpc_timeout_ms=1_000.0,
                dead_letter_poll_ms=500.0,
                give_up_after_ms=give_up_after_ms,
                worker_prefetch=max(1, prefetch),
                master_seed_batch=max(1, prefetch),
                master_drain_batch=max(1, prefetch),
                trace=trace,
                shards=max(1, shards),
                record_history=True,
                # -- the multi-tenant job service under test --------------
                tenant=VICTIM,
                priority=2,
                # The victim's share outweighs every other tenant
                # combined — paying tenants buy isolation by weight.
                tenant_shares={VICTIM: float(max(4, tenants)),
                               AGGRESSOR: 0.5},
                admission=True,
                # Sized so the opening burst (victim + bystander seeds)
                # crosses it — the aggressor (priority 0 < cutoff 1)
                # gets watermark-shed as well as quota-rejected.
                admission_soft_watermark=(victim_tasks // max(1, shards)
                                          + 8),
                admission_quotas={AGGRESSOR: aggressor_quota},
                admission_rates={AGGRESSOR: aggressor_rate_per_s},
                preemption=True,
                preemption_poll_ms=preemption_poll_ms,
                preemption_priority_cutoff=1,
                codec=codec,
            ),
        )
        framework.start()
        framework.start_all_workers()
        injector = None
        if fault_plan is not None:
            # Nemesis faults (worker crash / pause) compose with the
            # tenancy layer: preemption's release-and-requeue must stay
            # exactly-once even while victims of the plan lose leases.
            if framework.flight is not None:
                framework.flight.fault_plan = fault_plan.to_dict()
            injector = FaultInjector.for_framework(
                framework, fault_plan, rng=streams.stream("chaos-net"))
            injector.arm()

        masters = {VICTIM: framework.master}
        expected = {VICTIM: victim_app.expected_solution()}
        for i in range(2, tenants):
            name = f"b{i:03d}"
            app = TenantSquares(base=i * TENANT_STRIDE, n=bystander_tasks,
                                task_cost=bystander_task_cost)
            masters[name] = framework.attach_tenant_master(
                app, name, priority=1)
            expected[name] = app.expected_solution()
        if aggressor:
            flood = TenantSquares(base=TENANT_STRIDE,
                                  n=10 * aggressor_quota,
                                  task_cost=bystander_task_cost)
            masters[AGGRESSOR] = framework.attach_tenant_master(
                flood, AGGRESSOR, priority=0)
            expected[AGGRESSOR] = flood.expected_solution()

        reports: dict[str, MasterReport] = {}
        errors: dict[str, str] = {}

        def runner(name: str, master: Any):
            def run() -> None:
                try:
                    reports[name] = master.run()
                except Exception as exc:
                    # Legitimate for the aggressor: retries exhausted
                    # against a quota that never frees fast enough.
                    errors[name] = f"{type(exc).__name__}: {exc}"
            return run

        procs = [runtime.spawn(runner(name, master), name=f"tenant:{name}")
                 for name, master in sorted(masters.items())]
        for proc in procs:
            proc.join()
        if injector is not None:
            injector.disarm()
        # A master can observe a result one scheduling beat before the
        # writing worker's own flush reply resolves its history records;
        # drain those in-flight replies before snapshotting the history,
        # or the checker sees takes of writes that "never happened".
        runtime.sleep(2 * framework.config.worker_poll_ms + 200.0)
        framework.shutdown()

        history_report = None
        if framework.history is not None:
            history_report = check_history(framework.history,
                                           framework.final_contents())
        if framework.flight is not None:
            if history_report is not None and not history_report.ok:
                framework.flight.dump("checker-violation")
            for name, want in expected.items():
                if name == AGGRESSOR:
                    continue
                rep = reports.get(name)
                if rep is None or not rep.complete or rep.solution != want:
                    framework.flight.dump("wrong-solution")
                    break
        events = [
            (t, name, tuple(sorted(payload.items())))
            for t, name, payload in framework.metrics.events
            if name in TRACE_EVENTS
        ]
        admission_totals: dict[str, int] = {}
        for server in framework.space_servers:
            if server.admission is None:
                continue
            for key, value in server.admission.stats.items():
                admission_totals[key] = admission_totals.get(key, 0) + value
        victim_completions = [
            t for t, name, payload in framework.metrics.events
            if name == "result-aggregated"
            and payload.get("task_id", TENANT_STRIDE) < TENANT_STRIDE
        ]
        governor = framework.governor
        return ContentionResult(
            seed=seed,
            tenants=tenants,
            aggressor=aggressor,
            reports=reports,
            expected=expected,
            errors=errors,
            trace=events,
            grants=framework.tenant_grants(),
            admission_totals=admission_totals,
            aggressor_admission=framework.tenant_admission(AGGRESSOR),
            preemptions=governor.stats["preemptions"] if governor else 0,
            tasks_released=governor.stats["tasks_released"] if governor else 0,
            faults_injected=injector.injected if injector else 0,
            victim_completions_ms=victim_completions,
            tracer=framework.tracer,
            prometheus=framework.telemetry.prometheus_text(),
            history_report=history_report,
            flight=framework.flight,
        )

    return run_simulation(body)


def contention_isolation(
    seed: int = 42, **kwargs: Any,
) -> tuple[ContentionResult, ContentionResult, float]:
    """The headline robustness number: victim throughput with the
    aggressor flooding vs. the identical campaign without it.

    Returns ``(baseline, contended, ratio)``; the acceptance bar is
    ``ratio >= 0.8`` — admission control, weighted fair share and
    preemption together must hide the aggressor from the victim."""
    baseline = contention_chaos_experiment(seed=seed, aggressor=False,
                                           **kwargs)
    contended = contention_chaos_experiment(seed=seed, aggressor=True,
                                            **kwargs)
    base = baseline.victim_throughput_per_s
    ratio = (contended.victim_throughput_per_s / base) if base > 0 else 0.0
    return baseline, contended, ratio


def verify_contention_determinism(seed: int = 42, **kwargs: Any) -> bool:
    """Run the contention campaign twice; True iff byte-identical."""
    first = contention_chaos_experiment(seed=seed, **kwargs)
    second = contention_chaos_experiment(seed=seed, **kwargs)
    return first.trace == second.trace and \
        first.grants == second.grants and \
        {n: r.solution for n, r in first.reports.items()} == \
        {n: r.solution for n, r in second.reports.items()}
