"""Intrusiveness analysis: how many cycles does the framework steal
while the machine's owner is using it?

The paper's thesis is *non-intrusive* cycle stealing: "a local user
should not be able to perceive that local resources are being stolen for
foreign computations."  This experiment measures it directly: a worker
computes tasks while a user-activity window (load simulator 1) is active;
the metric is the CPU share the framework's worker consumed **during**
that window (foreign = total − external, integrated over the window),
with monitoring on versus off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.application import Application
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import Cluster
from repro.node.loadgen import LoadSimulator1
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["IntrusivenessResult", "intrusiveness_experiment", "stolen_cpu_ms"]


@dataclass(frozen=True)
class IntrusivenessResult:
    monitoring: bool
    stolen_ms: float          # ∫ foreign CPU over the user-activity window
    window_ms: float
    tasks_done: int

    @property
    def stolen_share(self) -> float:
        """Fraction of the user's window consumed by foreign work."""
        return self.stolen_ms / self.window_ms if self.window_ms else 0.0


def stolen_cpu_ms(
    history: list[tuple[float, float, float]], t0: float, t1: float
) -> float:
    """Integrate foreign CPU (total − external) over [t0, t1].

    ``history`` is the CPU recorder's step function.
    """
    stolen = 0.0
    for i, (t, total, external) in enumerate(history):
        t_next = history[i + 1][0] if i + 1 < len(history) else t1
        lo, hi = max(t, t0), min(t_next, t1)
        if hi > lo:
            stolen += (total - external) / 100.0 * (hi - lo)
    return stolen


def intrusiveness_experiment(
    app_factory: Callable[[], Application],
    cluster_factory: Callable[..., Cluster],
    monitoring: bool,
    user_window: tuple[float, float] = (10_000.0, 30_000.0),
    end_ms: float = 36_000.0,
    poll_interval_ms: float = 500.0,
    seed: int = 0,
) -> IntrusivenessResult:
    """One run: a single worker, a user-activity window, monitoring on/off."""

    def body(runtime: SimulatedRuntime) -> IntrusivenessResult:
        cluster = cluster_factory(runtime, workers=1, streams=RandomStreams(seed))
        node = cluster.workers[0]
        framework = AdaptiveClusterFramework(
            runtime, cluster, app_factory(),
            FrameworkConfig(monitoring=monitoring,
                            poll_interval_ms=poll_interval_ms,
                            compute_real=False),
        )
        framework.start()
        if not monitoring:
            framework.start_all_workers()
        runtime.spawn(framework.master.run, name="master-run")

        user = LoadSimulator1(runtime, node, rng=cluster.rng("user"))
        t0, t1 = user_window
        runtime.sleep(t0)
        user.start()
        runtime.sleep(t1 - t0)
        user.stop()
        runtime.sleep(end_ms - t1)

        history = node.cpu.recorder.history()
        result = IntrusivenessResult(
            monitoring=monitoring,
            stolen_ms=stolen_cpu_ms(history, t0, t1),
            window_ms=t1 - t0,
            tasks_done=framework.worker_hosts[0].tasks_done,
        )
        framework.master.cancel()
        framework.shutdown()
        return result

    return run_simulation(body)
