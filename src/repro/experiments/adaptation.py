"""Experiment 2: adaptation-protocol analysis (Figs 9, 10, 11).

A single worker runs the application while a scripted load sequence
drives it through the full signal cycle:

  Start (class-load spike) → load sim 2 (100 %) → Stop → release →
  Start again (class reload) → load sim 1 (30–50 %) → Pause → release →
  Resume.

Outputs, per figure panel:

* (a) the worker's CPU-usage history (total %, step function);
* (b) per-signal reaction latencies — *Client Signal* (network delivery
  to the SNMP client) and *Worker Signal* (until the required action
  completed at the worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.application import Application
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import Cluster
from repro.node.loadgen import LoadScript, LoadSimulator1, LoadSimulator2
from repro.runtime import SimulatedRuntime
from repro.sim.rng import RandomStreams

__all__ = ["SignalReaction", "AdaptationResult", "adaptation_experiment",
           "PAPER_TIMELINE"]


#: (time_ms, action) template for the paper's load sequence; actions are
#: named so the experiment can bind them to the simulators at run time.
PAPER_TIMELINE = [
    (8_000.0, "loadsim2-start"),    # → Stop
    (16_000.0, "loadsim2-stop"),    # → Start (class reload)
    (26_000.0, "loadsim1-start"),   # → Pause
    (34_000.0, "loadsim1-stop"),    # → Resume
]


@dataclass(frozen=True)
class SignalReaction:
    at_ms: float
    signal: str
    client_ms: float      # server → SNMP client delivery latency
    worker_ms: float      # client receipt → required action completed


@dataclass
class AdaptationResult:
    app_id: str
    cpu_history: list[tuple[float, float, float]]   # (t, total %, external %)
    reactions: list[SignalReaction]
    signals_in_order: list[str]
    class_loads: int
    snmp_polls: int = 0
    snmp_datagrams: int = 0

    def reaction_for(self, signal: str, occurrence: int = 0) -> SignalReaction:
        matches = [r for r in self.reactions if r.signal == signal]
        return matches[occurrence]

    def peak_cpu(self, t0: float, t1: float) -> float:
        """Max total CPU in [t0, t1], step-function semantics: the level
        in effect at t0 (set by the last step at or before it) counts."""
        peak = 0.0
        current = 0.0
        for t, total, _ in self.cpu_history:
            if t <= t0:
                current = total
                continue
            if t > t1:
                break
            peak = max(peak, current, total)
            current = total
        return max(peak, current if t0 <= t1 else 0.0)

    def format_table(self) -> str:
        header = f"{'t (ms)':>10} {'signal':>8} {'client (ms)':>12} {'worker (ms)':>12}"
        lines = [f"Adaptation protocol — {self.app_id}", header, "-" * len(header)]
        for r in self.reactions:
            lines.append(
                f"{r.at_ms:>10.0f} {r.signal:>8} {r.client_ms:>12.2f} "
                f"{r.worker_ms:>12.1f}"
            )
        return "\n".join(lines)


def adaptation_experiment(
    app_factory: Callable[[], Application],
    cluster_factory: Callable[..., Cluster],
    timeline: Optional[list[tuple[float, str]]] = None,
    end_ms: float = 44_000.0,
    poll_interval_ms: float = 1000.0,
    seed: int = 0,
    compute_real: bool = False,
    policy=None,
) -> AdaptationResult:
    """Run the scripted load sequence against a one-worker deployment."""
    if timeline is None:
        timeline = PAPER_TIMELINE
    app_id = app_factory().app_id

    def body(runtime: SimulatedRuntime) -> AdaptationResult:
        from repro.core.signals import ThresholdPolicy

        cluster = cluster_factory(runtime, workers=1, streams=RandomStreams(seed))
        node = cluster.workers[0]
        app = app_factory()
        framework = AdaptiveClusterFramework(
            runtime, cluster, app,
            FrameworkConfig(poll_interval_ms=poll_interval_ms,
                            compute_real=compute_real,
                            thresholds=policy if policy is not None
                            else ThresholdPolicy()),
        )
        framework.start()

        sim1 = LoadSimulator1(runtime, node, rng=cluster.rng("loadsim1"))
        sim2 = LoadSimulator2(runtime, node)
        actions = {
            "loadsim1-start": sim1.start,
            "loadsim1-stop": sim1.stop,
            "loadsim2-start": sim2.start,
            "loadsim2-stop": sim2.stop,
        }
        LoadScript(runtime, [(t, actions[name]) for t, name in timeline]).start()

        # The master keeps feeding tasks in the background; the experiment
        # observes the worker, not application completion.
        runtime.spawn(framework.master.run, name="master-run")
        runtime.sleep(end_ms)

        host = framework.worker_hosts[0]
        metrics = framework.metrics
        sent = metrics.events_named("signal-sent")
        client = metrics.events_named("signal-client")
        honored = metrics.events_named("signal-honored")

        reactions = []
        for t, payload in client:
            signal = payload["signal"]
            # First honored event at/after the client receipt for this signal.
            worker_ms = next(
                (
                    hp["latency_ms"]
                    for ht, hp in honored
                    if ht >= t and hp["signal"] == signal
                ),
                float("nan"),
            )
            reactions.append(
                SignalReaction(
                    at_ms=t,
                    signal=signal,
                    client_ms=payload["latency_ms"],
                    worker_ms=worker_ms,
                )
            )

        result = AdaptationResult(
            app_id=app.app_id,
            cpu_history=node.cpu.recorder.history(),
            reactions=reactions,
            signals_in_order=[p["signal"] for _, p in sent],
            class_loads=host.engine.loads,
            snmp_polls=framework.netmgmt.stats["polls"],
            snmp_datagrams=cluster.network.stats["datagrams"],
        )
        framework.shutdown()
        return result

    return run_simulation(body)
