"""Deterministic virtual-time discrete-event kernel.

The kernel runs *real Python threads* under a virtual clock: exactly one
simulated process executes at any instant, and control transfers only at
explicit blocking points (``sleep``, condition ``wait``).  This gives
deterministic event ordering (events are totally ordered by
``(time, sequence)``) while letting framework code use natural blocking
call stacks — the same code runs unchanged on the threaded runtime.
"""

from repro.sim.kernel import SimKernel, SimProcess
from repro.sim.condition import SimCondition, SimLock
from repro.sim.rng import RandomStreams

__all__ = ["SimKernel", "SimProcess", "SimCondition", "SimLock", "RandomStreams"]
