"""Virtual-time cooperative-thread simulation kernel.

Design
------
Each simulated process is a real OS thread, but the kernel enforces that at
most one process thread runs at a time.  A process runs until it blocks
(``sleep`` / condition ``wait``) or finishes; it then hands control back to
the kernel thread, which pops the next event off a ``(time, seq)``-ordered
heap and resumes the corresponding process.  Because control only transfers
at explicit blocking points, code between blocking points is atomic with
respect to other simulated processes — no data races, deterministic
schedules.

The scheduler is a calendar queue: a min-heap of *distinct* timestamps plus
a FIFO deque per timestamp.  Simulated workloads reuse timestamps heavily
(quantized network latencies, fixed-period sleeps), so the O(log n) heap
operation is paid once per distinct time while every individual event is an
O(1) deque append/popleft.  FIFO bucket order reproduces exactly the old
``(time, seq)`` total order, so schedules stay deterministic.  Process
failures are reported through an O(1) flag (``_failed``) set by the failing
process itself, so the per-event fail-fast check never walks the process
table.

Time is measured in **milliseconds** of virtual time (matching the paper's
plots).

Shutdown
--------
``shutdown()`` resumes every still-blocked process with :class:`SimKilled`
(a ``BaseException``) so worker loops unwind their stacks and the OS
threads exit.  Experiments always call ``shutdown()`` (or use the kernel as
a context manager) so pytest never leaks threads.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
import traceback
from typing import Any, Callable, Optional

from repro.errors import DeadlockError, SimKilled, SimulationError

__all__ = ["SimKernel", "SimProcess"]


class EventHandle:
    """Queue payload and cancellation handle for one scheduled action.

    Ordering lives in the calendar queue (time bucket + FIFO position), so
    this object is never compared — which keeps it a single allocation per
    ``call_later`` (the scheduler's hottest constructor).
    """

    __slots__ = ("action", "cancelled")

    def __init__(self, action: Callable[[], None]) -> None:
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimProcess:
    """A simulated process backed by a real thread.

    The thread alternates between running (after the kernel releases
    ``_resume``) and blocked (after releasing ``_yielded`` and acquiring
    ``_resume`` again).  The handoff uses raw locks as binary semaphores
    rather than :class:`threading.Event`: ``Event.wait`` allocates a
    fresh waiter lock per call (it sits on a ``Condition``), so the
    lock-pair protocol saves two allocations and two condition dances per
    context switch — the dominant cost of ``process_handoffs_per_s``.
    Strict alternation (kernel releases ``_resume`` exactly once per
    ``_yielded`` acquisition) keeps each lock toggling safely.
    """

    def __init__(self, kernel: "SimKernel", fn: Callable[[], Any], name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.finished = False
        self.killed = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.error_tb: str = ""
        self._fn = fn
        self._resume = threading.Lock()
        self._resume.acquire()      # starts "unsignalled"
        self._yielded = threading.Lock()
        self._yielded.acquire()     # starts "unsignalled"
        # Reusable wake action: a process has at most one pending sleep,
        # so one handle per process replaces a lambda + EventHandle
        # allocation on every sleep() (the scheduler's hottest path).
        self._wake_handle = EventHandle(self._kernel_wake)
        self._thread = threading.Thread(target=self._run, name=f"sim:{name}", daemon=True)

    # -- lifecycle ---------------------------------------------------------

    def _start_thread(self) -> None:
        self._thread.start()

    def _kernel_wake(self) -> None:
        self.kernel._wake(self)

    def _run(self) -> None:
        # Wait for the kernel to schedule our first slice.
        self._resume.acquire()
        try:
            if self.killed:
                raise SimKilled()
            self.result = self._fn()
        except SimKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - recorded and re-raised by run()
            self.error = exc
            self.error_tb = traceback.format_exc()
            self.kernel._failed.append(self)
        finally:
            self.finished = True
            self.kernel._current = None
            self._yielded.release()

    # -- called from inside the process thread ------------------------------

    def _block(self) -> None:
        """Hand control to the kernel; return when the kernel resumes us."""
        self._yielded.release()
        self._resume.acquire()
        if self.killed:
            raise SimKilled()

    # -- called from the kernel thread --------------------------------------

    def _resume_and_wait(self) -> None:
        """Let the process run one slice; block the kernel until it yields."""
        self._resume.release()
        self._yielded.acquire()

    def join_native(self, timeout: float = 5.0) -> None:
        self._thread.join(timeout)


class SimKernel:
    """Deterministic discrete-event kernel with thread-backed processes."""

    def __init__(self) -> None:
        # Calendar queue: min-heap of distinct times + FIFO bucket per time.
        # A time is in ``_times`` iff its bucket exists in ``_buckets``.
        self._times: list[float] = []
        self._buckets: dict[float, deque[EventHandle]] = {}
        self._now = 0.0
        self._current: Optional[SimProcess] = None
        self.processes: list[SimProcess] = []
        self._failed: list[SimProcess] = []  # set by the failing process
        self._running = False
        self._shutdown = False
        #: Optional observer called once per distinct virtual time, right
        #: before that time's bucket drains: ``on_advance(time_ms)``.
        #: Lets telemetry sample the clock without scheduling events of
        #: its own, so attaching it cannot change the event order.  Must
        #: not call back into the kernel scheduler.
        self.on_advance: Optional[Callable[[float], None]] = None

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "SimKernel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- clock ----------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    # -- scheduling -------------------------------------------------------------

    def call_later(self, delay_ms: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run on the kernel thread after ``delay_ms``."""
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        handle = EventHandle(action)
        time_ms = self._now + delay_ms
        bucket = self._buckets.get(time_ms)
        if bucket is None:
            self._buckets[time_ms] = bucket = deque()
            heapq.heappush(self._times, time_ms)
        bucket.append(handle)
        return handle

    def spawn(self, fn: Callable[[], Any], name: str = "proc") -> SimProcess:
        """Create a process; it starts at the current virtual time."""
        if self._shutdown:
            raise SimulationError("kernel already shut down")
        proc = SimProcess(self, fn, name)
        self.processes.append(proc)
        proc._start_thread()
        self.call_later(0.0, lambda: self._wake(proc))
        return proc

    # -- process-side primitives -------------------------------------------------

    def current(self) -> SimProcess:
        proc = self._current
        if proc is None:
            raise SimulationError("not inside a simulated process")
        return proc

    def sleep(self, delay_ms: float) -> None:
        """Block the current process for ``delay_ms`` of virtual time."""
        proc = self.current()
        # Inline call_later with the process's reusable wake handle: a
        # process has exactly one pending sleep at a time, so the handle
        # can't be double-queued, and sleep wakes are never cancelled.
        time_ms = self._now + (delay_ms if delay_ms > 0.0 else 0.0)
        bucket = self._buckets.get(time_ms)
        if bucket is None:
            self._buckets[time_ms] = bucket = deque()
            heapq.heappush(self._times, time_ms)
        bucket.append(proc._wake_handle)
        proc._block()

    def _wake(self, proc: SimProcess) -> None:
        """Kernel-thread action: run one slice of ``proc``."""
        if proc.finished:
            return
        self._current = proc
        proc._resume_and_wait()
        self._current = None

    # -- main loop --------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events in order until the queue drains or ``until`` is passed.

        Returns the virtual time at exit.  Raises the first error recorded
        by any process (fail fast), and :class:`DeadlockError` if processes
        remain blocked with an empty queue — unless the kernel was shut down.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            times = self._times
            buckets = self._buckets
            pop_time = heapq.heappop
            failed = self._failed
            events = 0
            while times:
                time_ms = times[0]
                if until is not None and time_ms > until:
                    break
                # Actions may append same-time events mid-drain; the inner
                # loop picks them up in FIFO order.  Later times open new
                # buckets, so this bucket stays the queue minimum until dry.
                bucket = buckets[time_ms]
                self._now = time_ms
                if self.on_advance is not None:
                    self.on_advance(time_ms)
                while bucket:
                    event = bucket.popleft()
                    if event.cancelled:
                        continue
                    events += 1
                    if events > max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    event.action()
                    if failed:
                        self._raise_process_error()
                pop_time(times)
                del buckets[time_ms]
            if until is not None:
                self._now = max(self._now, until)
            if not times and not self._shutdown:
                blocked = [p.name for p in self.processes if not p.finished]
                if blocked and until is None:
                    raise DeadlockError(
                        f"no pending events but processes are blocked: {blocked}"
                    )
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> float:
        """Run until no events remain, tolerating still-blocked processes.

        Useful for experiments whose server loops wait forever by design.
        ``max_events`` guards against runaway event storms, as in ``run``.
        """
        times = self._times
        buckets = self._buckets
        pop_time = heapq.heappop
        failed = self._failed
        events = 0
        while times:
            time_ms = times[0]
            bucket = buckets[time_ms]
            self._now = time_ms
            if self.on_advance is not None:
                self.on_advance(time_ms)
            while bucket:
                event = bucket.popleft()
                if event.cancelled:
                    continue
                events += 1
                if events > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                event.action()
                if failed:
                    self._raise_process_error()
            pop_time(times)
            del buckets[time_ms]
        return self._now

    def _raise_process_error(self) -> None:
        while self._failed:
            proc = self._failed.pop(0)
            if proc.error is None:
                continue
            err = proc.error
            proc.error = None
            raise SimulationError(
                f"process {proc.name!r} failed: {err!r}\n{proc.error_tb}"
            ) from err

    # -- teardown ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Kill all blocked processes and join their native threads."""
        self._shutdown = True
        for proc in self.processes:
            if not proc.finished:
                proc.killed = True
                proc._resume_and_wait()
        for proc in self.processes:
            proc.join_native()
        self._times.clear()
        self._buckets.clear()
