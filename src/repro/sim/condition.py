"""Condition variables and locks for simulated processes.

Because the kernel is cooperative (a single process runs at a time and
yields only at explicit blocking points), :class:`SimLock` does not need to
exclude anything — it exists so that code written against the runtime
abstraction (``with lock: ... cond.wait()``) runs unchanged on the threaded
runtime, where the lock is a real ``threading.Lock``.  :class:`SimCondition`
implements monitor-style ``wait(timeout)/notify/notify_all`` over kernel
events.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import SimulationError
from repro.sim.kernel import SimKernel, SimProcess

__all__ = ["SimLock", "SimCondition"]

#: Owner sentinel for code running on the kernel thread (timer callbacks).
#: Such code is atomic with respect to all processes, so holding a lock
#: there is always safe.
_KERNEL_THREAD = object()


class SimLock:
    """Cooperative no-op lock that still tracks ownership for debugging."""

    def __init__(self, kernel: SimKernel) -> None:
        self._kernel = kernel
        self._owner: object = None
        self._depth = 0

    def _caller(self) -> object:
        proc = self._kernel._current
        return proc if proc is not None else _KERNEL_THREAD

    def acquire(self) -> bool:
        # Space operations enter/leave a lock per call, so this is hot:
        # _caller() is inlined and the error path kept out of line.
        proc = self._kernel._current
        if proc is None:
            proc = _KERNEL_THREAD
        owner = self._owner
        if owner is not None and owner is not proc:
            # Cannot happen under cooperative scheduling unless a process
            # blocked while holding the lock, which the monitor pattern
            # (wait releases the lock) prevents.
            owner_name = getattr(owner, "name", "<kernel>")
            proc_name = getattr(proc, "name", "<kernel>")
            raise SimulationError(
                f"lock owned by {owner_name} acquired by {proc_name}"
            )
        self._owner = proc
        self._depth += 1
        return True

    def release(self) -> None:
        depth = self._depth - 1
        if depth < 0:
            raise SimulationError("release of unacquired lock")
        self._depth = depth
        if depth == 0:
            self._owner = None

    # ``with lock:`` never binds the target, so acquire's ``True`` return
    # is fine — aliasing skips one frame per entry.
    __enter__ = acquire

    def __exit__(self, *exc: object) -> None:
        self.release()


class _Waiter:
    """One blocked process; woken at most once (by notify or timeout)."""

    __slots__ = ("proc", "notified", "woken")

    def __init__(self, proc: SimProcess) -> None:
        self.proc = proc
        self.notified = False
        self.woken = False


class SimCondition:
    """Monitor condition over kernel events.

    ``wait`` returns ``True`` if the process was notified, ``False`` on
    timeout — matching :class:`threading.Condition.wait`.
    """

    def __init__(self, kernel: SimKernel, lock: Optional[SimLock] = None) -> None:
        self._kernel = kernel
        self._lock = lock if lock is not None else SimLock(kernel)
        self._waiters: deque[_Waiter] = deque()

    # Delegate the lock protocol so ``with cond:`` works.
    def acquire(self) -> bool:
        return self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "SimCondition":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block the calling process until notified or ``timeout`` ms pass."""
        kernel = self._kernel
        proc = kernel.current()
        waiter = _Waiter(proc)
        self._waiters.append(waiter)

        handle = None
        if timeout is not None:
            def _timeout() -> None:
                if not waiter.woken:
                    waiter.woken = True
                    if waiter in self._waiters:
                        self._waiters.remove(waiter)
                    kernel._wake(proc)

            handle = kernel.call_later(max(0.0, timeout), _timeout)

        # Monitor semantics: release while blocked, reacquire on wake.
        depth = self._lock._depth
        for _ in range(depth):
            self._lock.release()
        try:
            proc._block()
        finally:
            for _ in range(depth):
                self._lock.acquire()
        if handle is not None:
            handle.cancel()
        return waiter.notified

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiters at the current virtual time."""
        kernel = self._kernel
        woken = 0
        while self._waiters and woken < n:
            waiter = self._waiters.popleft()
            if waiter.woken:
                continue
            waiter.woken = True
            waiter.notified = True
            proc = waiter.proc
            kernel.call_later(0.0, lambda p=proc: kernel._wake(p))
            woken += 1

    def notify_all(self) -> None:
        self.notify(n=len(self._waiters))
