"""Named, reproducible random-number streams.

Every stochastic component (load generators, network jitter, Monte Carlo
tasks) draws from its own named stream so that adding a component never
perturbs the draws of another — a standard variance-reduction / determinism
idiom in discrete-event simulation.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same (seed, name) pair always yields an identically seeded
        generator, independent of creation order.
        """
        gen = self._cache.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, child_seed]))
            self._cache[name] = gen
        return gen

    def fork(self, subseed: int) -> "RandomStreams":
        """Derive an independent stream family (e.g. per experiment run)."""
        return RandomStreams(self.seed * 1_000_003 + subseed)
