"""Command-line interface: regenerate any of the paper's artifacts.

Examples::

    python -m repro fig7                 # ray-tracing scalability table
    python -m repro fig9 --ascii         # adaptation run with CPU plot
    python -m repro table2               # measured classification
    python -m repro exp3 --app ray-tracing
    python -m repro all                  # the full evaluation (§5)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.experiments import (
    APP_FACTORIES,
    CLUSTER_FACTORIES,
    MAX_WORKERS,
    adaptation_experiment,
    dynamics_experiment,
    scalability_experiment,
)
from repro.experiments.classify import classify_applications, format_table

_FIGURE_APPS = {
    "fig6": "option-pricing",
    "fig7": "ray-tracing",
    "fig8": "web-prefetch",
    "fig9": "option-pricing",
    "fig10": "ray-tracing",
    "fig11": "web-prefetch",
}


def _ascii_history(history, width: int = 56, t_max: float = 44_000.0) -> str:
    lines = [f"{'t (s)':>6} {'CPU %':>6}  0%{' ' * (width - 6)}100%"]
    step = t_max / 44.0
    t, index = 0.0, 0
    while t <= t_max:
        while index + 1 < len(history) and history[index + 1][0] <= t:
            index += 1
        level = history[index][1]
        lines.append(
            f"{t / 1000.0:>6.1f} {level:>6.0f}  "
            f"|{'#' * int(round(level / 100.0 * width))}"
        )
        t += step
    return "\n".join(lines)


def _scalability(app_id: str, workers: Optional[int]) -> None:
    sweep = scalability_experiment(
        APP_FACTORIES[app_id],
        CLUSTER_FACTORIES[app_id],
        list(range(1, (workers or MAX_WORKERS[app_id]) + 1)),
    )
    print(sweep.format_table())
    print("speedups:", [(w, round(s, 2)) for w, s in sweep.speedups()])


def _adaptation(app_id: str, ascii_plot: bool) -> None:
    result = adaptation_experiment(APP_FACTORIES[app_id], CLUSTER_FACTORIES[app_id])
    if ascii_plot:
        print(_ascii_history(result.cpu_history))
        print()
    print(result.format_table())
    print(f"signal cycle: {' → '.join(result.signals_in_order)}; "
          f"class loads: {result.class_loads}")


def _dynamics(app_id: str, workers: Optional[int]) -> None:
    result = dynamics_experiment(
        APP_FACTORIES[app_id], CLUSTER_FACTORIES[app_id],
        workers=workers or (8 if app_id == "option-pricing" else 4),
    )
    print(result.format_table())


#: Nemesis fault kinds accepted by ``--fault``; an optional ``:target``
#: suffix picks the victim ("space", "shard:<i>", or a hostname).
_NEMESIS_NAMES = ("partition", "pause", "gray-slow")


def _one_fault(value: str) -> str:
    if value in ("kill-primary-space", "kill-master"):
        return value
    if value.startswith("kill-shard:"):
        index = value[len("kill-shard:"):]
        if index.isdigit():
            return value
    name, _, suffix = value.partition(":")
    if name in _NEMESIS_NAMES:
        # Bare kind, "space", "shard:<i>", or a literal hostname —
        # anything except an obviously malformed shard index.
        shard = suffix.partition(":")
        if suffix.startswith("shard:") and not shard[2].isdigit():
            raise argparse.ArgumentTypeError(
                f"{value!r}: shard target must be shard:<i> with integer i")
        return value
    raise argparse.ArgumentTypeError(
        f"{value!r} is not a known fault (expected kill-primary-space, "
        f"kill-master, kill-shard:<i>, or partition/pause/gray-slow with "
        f"an optional :space, :shard:<i>, or :<hostname> target)")


def _tenant_count(value: str) -> int:
    """argparse type for ``--tenants``: an integer count of at least 2.

    The contention campaign needs the victim plus at least one other
    tenant, so 0 and 1 are rejected up front rather than deep inside
    the experiment body.
    """
    try:
        tenants = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{value!r} is not an integer tenant count") from None
    if tenants < 2:
        raise argparse.ArgumentTypeError(
            f"--tenants needs at least 2 (victim + one other), got {tenants}")
    return tenants


def _fault_spec(value: str) -> list[str]:
    """argparse type for ``--fault``: a comma-separated fault list.

    One ``--fault`` flag may compose a whole campaign
    (``--fault partition:space,kill-shard:1``); the flag also remains
    repeatable, and the two forms mix freely.
    """
    faults = [part.strip() for part in value.split(",") if part.strip()]
    if not faults:
        raise argparse.ArgumentTypeError("empty fault list")
    return [_one_fault(fault) for fault in faults]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of 'Adaptive Cluster "
                    "Computing using JavaSpaces' (CLUSTER 2001).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in ("fig6", "fig7", "fig8"):
        p = sub.add_parser(fig, help=f"scalability figure ({_FIGURE_APPS[fig]})")
        p.add_argument("--workers", type=int, default=None,
                       help="sweep 1..N workers (default: the paper's testbed)")
    for fig in ("fig9", "fig10", "fig11"):
        p = sub.add_parser(fig, help=f"adaptation figure ({_FIGURE_APPS[fig]})")
        p.add_argument("--ascii", action="store_true",
                       help="render the CPU-usage history as ASCII")
    sub.add_parser("table2", help="measured application classification")
    p = sub.add_parser("exp3", help="dynamic worker behaviour (0/25/50 % loaded)")
    p.add_argument("--app", choices=sorted(APP_FACTORIES), default="ray-tracing")
    p.add_argument("--workers", type=int, default=None)
    sub.add_parser("all", help="regenerate the full evaluation")

    # The paper: "Input parameters are fed in using a simple GUI" — here,
    # a CLI: price an arbitrary option on the simulated cluster.
    p = sub.add_parser("price", help="price an option on the 13-PC cluster")
    p.add_argument("--type", choices=["call", "put"], default="call")
    p.add_argument("--spot", type=float, default=100.0)
    p.add_argument("--strike", type=float, default=100.0)
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--volatility", type=float, default=0.2)
    p.add_argument("--maturity", type=float, default=1.0, help="years")
    p.add_argument("--exercise-dates", type=int, default=3)
    p.add_argument("--simulations", type=int, default=10_000)
    p.add_argument("--workers", type=int, default=13)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection run (crash + flap + restart + poison)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--tasks", type=int, default=24)
    p.add_argument("--random-plan", action="store_true",
                   help="draw the fault schedule from the seed instead of "
                        "the fixed acceptance campaign")
    p.add_argument("--fault", action="extend", dest="faults",
                   type=_fault_spec, metavar="FAULT[,FAULT...]",
                   help="run the coordinator-fault campaign instead "
                        "(hot standby + master checkpoints + consistency "
                        "checker); kill-primary-space, kill-master, "
                        "kill-shard:<i>, or a nemesis kind partition / "
                        "pause / gray-slow with an optional target "
                        "(:space, :shard:<i>, :<hostname>).  Accepts a "
                        "comma-separated list and is repeatable, e.g. "
                        "--fault partition:space,kill-shard:1")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the space over N shards "
                        "(kill-shard:<i> needs i < N)")
    p.add_argument("--codec", choices=["pickle", "compact"],
                   default="pickle",
                   help="entry/WAL codec for the run; the recovery trace "
                        "must be byte-identical under either")
    p.add_argument("--tenants", type=_tenant_count, default=None,
                   metavar="N",
                   help="run the multi-tenant contention campaign instead: "
                        "N tenants (victim + aggressor + bystanders) share "
                        "the space under admission control, weighted "
                        "fair-share, and priority preemption")
    p.add_argument("--isolation", action="store_true",
                   help="with --tenants: also run the aggressor-free "
                        "baseline and require the victim to keep >= 0.8x "
                        "of its isolated throughput")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run twice and require identical recovery traces")
    p.add_argument("--prefetch", type=int, default=1,
                   help="worker pipeline depth (also batches master "
                        "seed/drain); faults then land mid-batch")
    p.add_argument("--trace", action="store_true",
                   help="record telemetry spans during the campaign "
                        "(does not perturb the recovery trace)")
    p.add_argument("--trace-out", default="chaos_trace.json",
                   help="Chrome trace_event output path (with --trace)")
    p.add_argument("--metrics-out", default=None,
                   help="write the final Prometheus metrics dump here")
    p.add_argument("--postmortem-dir", default="postmortems",
                   help="write flight-recorder postmortem bundles here "
                        "(standby promotions, checker/gate failures); "
                        "empty string disables")

    p = sub.add_parser(
        "trace",
        help="run one traced job; write a Perfetto-loadable span file",
    )
    p.add_argument("job", choices=sorted(APP_FACTORIES))
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event JSON (open in ui.perfetto.dev)")
    p.add_argument("--jsonl", default=None,
                   help="also write raw spans as JSON lines")
    p.add_argument("--metrics-out", default=None,
                   help="write the final Prometheus metrics dump here")
    p.add_argument("--real", action="store_true",
                   help="run the real kernels (default: cost model only)")

    p = sub.add_parser("top", help="live cluster console for one job")
    p.add_argument("job", choices=sorted(APP_FACTORIES))
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="partition the space over N shards (adds one "
                        "console line per shard)")
    p.add_argument("--interval", type=float, default=1_000.0,
                   help="frame interval in virtual ms")
    p.add_argument("--follow", action="store_true",
                   help="print every frame, not just the final snapshot")
    p.add_argument("--json", action="store_true",
                   help="print one machine-readable final snapshot "
                        "instead of the console table")
    p.add_argument("--real", action="store_true",
                   help="run the real kernels (default: cost model only)")

    p = sub.add_parser(
        "doctor",
        help="critical-path attribution: where one job's wall time went",
    )
    p.add_argument("job", choices=sorted(APP_FACTORIES))
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="partition the space over N shards (scatter "
                        "fan-outs then show up as a phase)")
    p.add_argument("--prefetch", type=int, default=1,
                   help="worker pipeline depth (also batches master "
                        "seed/drain)")
    p.add_argument("--json", action="store_true",
                   help="print the attribution report as JSON")
    p.add_argument("--out", default=None,
                   help="also write the report JSON here")
    p.add_argument("--real", action="store_true",
                   help="run the real kernels (default: cost model only)")

    p = sub.add_parser("render", help="render a JSON scene on the cluster")
    p.add_argument("scene", nargs="?", default=None,
                   help="scene JSON file (default: the built-in scene)")
    p.add_argument("--output", default="render_out.ppm")
    p.add_argument("--size", type=int, default=600)
    p.add_argument("--aa", type=int, default=1, help="AA samples per axis")

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command

    if command in ("fig6", "fig7", "fig8"):
        _scalability(_FIGURE_APPS[command], args.workers)
    elif command in ("fig9", "fig10", "fig11"):
        _adaptation(_FIGURE_APPS[command], args.ascii)
    elif command == "table2":
        print(format_table(classify_applications()))
    elif command == "exp3":
        _dynamics(args.app, args.workers)
    elif command == "all":
        from repro.experiments.report import run_full_evaluation

        report = run_full_evaluation(
            progress=lambda msg: print(f"  … {msg}", file=sys.stderr)
        )
        print(report.render())
    elif command == "price":
        _price(args)
    elif command == "chaos":
        return _chaos(args)
    elif command == "trace":
        return _trace_cmd(args)
    elif command == "top":
        return _top(args)
    elif command == "doctor":
        return _doctor(args)
    elif command == "render":
        _render(args)
    return 0


def _price(args) -> None:
    from repro.apps.options import (
        OptionContract,
        OptionPricingApplication,
        OptionType,
    )
    from repro.core.framework import AdaptiveClusterFramework
    from repro.experiments.harness import run_simulation
    from repro.node.cluster import testbed_large

    contract = OptionContract(
        option_type=OptionType(args.type),
        spot=args.spot,
        strike=args.strike,
        rate=args.rate,
        volatility=args.volatility,
        maturity_years=args.maturity,
        exercise_dates=args.exercise_dates,
    )
    app = OptionPricingApplication(contract=contract,
                                   n_simulations=args.simulations)

    def body(runtime):
        cluster = testbed_large(runtime, workers=args.workers)
        framework = AdaptiveClusterFramework(runtime, cluster, app)
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = run_simulation(body)
    solution = report.solution
    print(f"{args.type} S={args.spot:g} K={args.strike:g} r={args.rate:g} "
          f"σ={args.volatility:g} T={args.maturity:g}y "
          f"({args.exercise_dates} exercise dates, "
          f"{args.simulations} simulations, {args.workers} workers)")
    print(f"price    : {solution['price']:.4f}")
    print(f"interval : [{solution['ci_low']:.4f}, {solution['ci_high']:.4f}]")
    print(f"parallel : {report.parallel_ms:,.0f} virtual ms")


def _write_telemetry(result, trace_out, metrics_out) -> None:
    """Export the chaos run's telemetry artifacts, if any were recorded."""
    if trace_out is not None and result.tracer is not None \
            and result.tracer.enabled:
        result.tracer.write_chrome(trace_out)
        print(f"trace: {len(result.tracer.spans)} spans → {trace_out}")
    if metrics_out is not None:
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(result.prometheus)
        print(f"metrics: → {metrics_out}")


def _write_postmortems(result, directory: str, label: str) -> None:
    """Persist the flight recorder's postmortem bundles, if any fired.

    Called on every exit path — a passing kill-primary-space campaign
    still dumps the standby-promotion bundle, and a failing gate adds
    its own.  Re-invocation after a late dump (determinism divergence)
    rewrites the same filenames deterministically and adds the new one.
    """
    import os

    if not directory:
        return
    for i, bundle in enumerate(result.postmortems):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory,
            f"postmortem-{label}-{i}-{bundle.reason}-t{int(bundle.t_ms)}.json")
        bundle.write(path)
        print(f"postmortem: {bundle.reason} → {path}")


def _chaos(args) -> int:
    from repro.experiments.chaos import chaos_experiment, verify_chaos_determinism

    if args.tenants is not None:
        if args.faults:
            print("FAIL: --tenants and --fault are separate campaigns; "
                  "pick one")
            return 2
        return _contention_chaos(args)
    if args.faults:
        return _coordination_chaos(args)
    result = chaos_experiment(seed=args.seed, workers=args.workers,
                              tasks=args.tasks, random_plan=args.random_plan,
                              prefetch=args.prefetch, trace=args.trace,
                              shards=args.shards, codec=args.codec)
    print(result.format_summary())
    _write_telemetry(result, args.trace_out if args.trace else None,
                     args.metrics_out)
    _write_postmortems(result, args.postmortem_dir, "chaos")
    if not result.correct:
        print("FAIL: solution does not match the expected partial sum")
        return 1
    if not result.consistent:
        print("FAIL: consistency checker found history violations")
        return 1
    if args.verify_determinism:
        ok = verify_chaos_determinism(seed=args.seed, workers=args.workers,
                                      tasks=args.tasks,
                                      random_plan=args.random_plan,
                                      prefetch=args.prefetch,
                                      trace=args.trace,
                                      shards=args.shards,
                                      codec=args.codec)
        print(f"determinism: {'identical traces' if ok else 'TRACES DIVERGED'}")
        if not ok:
            if result.flight is not None:
                result.flight.dump("determinism-diverged")
                _write_postmortems(result, args.postmortem_dir, "chaos")
            return 1
    return 0


def _coordination_chaos(args) -> int:
    from repro.experiments.chaos import (
        coordination_chaos_experiment,
        verify_coordination_determinism,
    )

    result = coordination_chaos_experiment(
        seed=args.seed, workers=args.workers, tasks=args.tasks,
        faults=args.faults, prefetch=args.prefetch, trace=args.trace,
        shards=args.shards, codec=args.codec,
    )
    print(result.format_summary())
    _write_telemetry(result, args.trace_out if args.trace else None,
                     args.metrics_out)
    _write_postmortems(result, args.postmortem_dir, "coordination")
    if not result.exactly_once:
        print("FAIL: job did not complete every task exactly-once")
        return 1
    if not result.consistent:
        print("FAIL: consistency checker found history violations")
        return 1
    if args.verify_determinism:
        ok = verify_coordination_determinism(
            seed=args.seed, workers=args.workers, tasks=args.tasks,
            faults=args.faults, prefetch=args.prefetch, trace=args.trace,
            shards=args.shards, codec=args.codec,
        )
        print(f"determinism: {'identical traces' if ok else 'TRACES DIVERGED'}")
        if not ok:
            if result.flight is not None:
                result.flight.dump("determinism-diverged")
                _write_postmortems(result, args.postmortem_dir, "coordination")
            return 1
    return 0


def _contention_chaos(args) -> int:
    from repro.experiments.chaos import (
        contention_chaos_experiment,
        contention_isolation,
        verify_contention_determinism,
    )

    result = contention_chaos_experiment(
        seed=args.seed, workers=args.workers, tenants=args.tenants,
        prefetch=args.prefetch, trace=args.trace, shards=args.shards,
        codec=args.codec,
    )
    print(result.format_summary())
    _write_telemetry(result, args.trace_out if args.trace else None,
                     args.metrics_out)
    _write_postmortems(result, args.postmortem_dir, "contention")
    if not result.correct:
        print("FAIL: a non-aggressor tenant lost tasks or got a wrong sum")
        return 1
    if not result.consistent:
        print("FAIL: consistency checker found history violations")
        return 1
    if args.isolation:
        baseline, contended, ratio = contention_isolation(
            seed=args.seed, workers=args.workers, tenants=args.tenants,
            prefetch=args.prefetch, shards=args.shards,
        )
        print(f"isolation: victim {contended.victim_throughput_per_s:.2f}/s "
              f"contended vs {baseline.victim_throughput_per_s:.2f}/s alone "
              f"(ratio {ratio:.3f})")
        if ratio < 0.8:
            print("FAIL: aggressor degraded the victim below 0.8x baseline")
            return 1
    if args.verify_determinism:
        ok = verify_contention_determinism(
            seed=args.seed, workers=args.workers, tenants=args.tenants,
            prefetch=args.prefetch, trace=args.trace, shards=args.shards,
            codec=args.codec,
        )
        print(f"determinism: {'identical traces' if ok else 'TRACES DIVERGED'}")
        if not ok:
            if result.flight is not None:
                result.flight.dump("determinism-diverged")
                _write_postmortems(result, args.postmortem_dir, "contention")
            return 1
    return 0


def _traced_run(app_id: str, workers: Optional[int], seed: int, real: bool,
                trace: bool, monitor=None, snapshot_ms: Optional[float] = 500.0,
                shards: int = 1, prefetch: int = 1):
    """Run one job on a fresh simulated cluster; return (report, framework).

    ``monitor`` is an optional ``fn(runtime, framework, done)`` spawned as
    a sidecar process before the master starts (the console uses it);
    ``done`` becomes truthy when the job finishes, and the monitor must
    return soon after so the simulation can drain.
    """
    from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
    from repro.experiments.harness import run_simulation
    from repro.sim.rng import RandomStreams

    config = FrameworkConfig(compute_real=real, trace=trace,
                             metrics_snapshot_ms=snapshot_ms,
                             shards=max(1, shards),
                             worker_prefetch=max(1, prefetch),
                             master_seed_batch=max(1, prefetch),
                             master_drain_batch=max(1, prefetch))

    def body(runtime):
        cluster = CLUSTER_FACTORIES[app_id](
            runtime, workers=workers or MAX_WORKERS[app_id],
            streams=RandomStreams(seed))
        framework = AdaptiveClusterFramework(
            runtime, cluster, APP_FACTORIES[app_id](), config)
        framework.start()
        done: list[bool] = []
        if monitor is not None:
            runtime.spawn(lambda: monitor(runtime, framework, done),
                          name="console")
        report = framework.run()
        done.append(True)
        framework.shutdown()
        return report, framework

    return run_simulation(body)


def _trace_cmd(args) -> int:
    report, framework = _traced_run(args.job, args.workers, args.seed,
                                    args.real, trace=True)
    tracer = framework.tracer
    job = tracer.find("job")
    coverage = (tracer.coverage(job.start_ms, job.end_ms)
                if job is not None else 0.0)
    tracer.write_chrome(args.out)
    print(f"{args.job}: {report.parallel_ms:,.0f} virtual ms, "
          f"{len(tracer.spans)} spans, coverage {coverage:.1%} of job time")
    print(f"trace: → {args.out}  (open in https://ui.perfetto.dev)")
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
        print(f"spans: → {args.jsonl}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(framework.telemetry.prometheus_text())
        print(f"metrics: → {args.metrics_out}")
    return 0


def _top(args) -> int:
    import json

    from repro.telemetry import cluster_snapshot, cluster_table

    frames: list[str] = []

    def monitor(runtime, framework, done):
        while True:
            runtime.sleep(args.interval)
            if done:
                return
            frames.append(cluster_table(framework))

    # Snapshot at the frame interval so the SLO watchdog evaluates its
    # rules while the job runs — the alerts pane is live, not post-hoc.
    report, framework = _traced_run(args.job, args.workers, args.seed,
                                    args.real, trace=False, monitor=monitor,
                                    snapshot_ms=args.interval,
                                    shards=args.shards)
    if args.json:
        print(json.dumps(cluster_snapshot(framework, report=report),
                         indent=2, sort_keys=True))
        return 0
    if args.follow:
        for frame in frames:
            print(frame)
            print()
    print(cluster_table(framework, report=report))
    return 0


def _doctor(args) -> int:
    from repro.telemetry import analyze_job

    report, framework = _traced_run(args.job, args.workers, args.seed,
                                    args.real, trace=True,
                                    shards=args.shards,
                                    prefetch=args.prefetch)
    doc = analyze_job(framework.tracer)
    if args.json:
        print(doc.to_json())
    else:
        print(doc.format())
        print(f"\njob wall time: {report.parallel_ms:,.0f} virtual ms "
              f"(attributed {doc.attributed_fraction():.1%})")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(doc.to_json() + "\n")
        if not args.json:   # keep --json stdout parseable as one document
            print(f"report: → {args.out}")
    return 0


def _render(args) -> None:
    import numpy as np

    from repro.apps.raytrace import RayTracingApplication, load_scene
    from repro.core.framework import AdaptiveClusterFramework
    from repro.experiments.harness import run_simulation
    from repro.node.cluster import testbed_small

    scene = load_scene(args.scene) if args.scene else None
    size = args.size
    strip = max(1, size // 24)
    while size % strip:
        strip -= 1
    app = RayTracingApplication(scene=scene, width=size, height=size,
                                strip_rows=strip, max_depth=3)
    if args.aa > 1:
        app.max_depth = 3  # AA handled below via render args in execute
    app_samples = args.aa

    original_execute = app.execute

    def execute_with_aa(payload):
        from repro.apps.raytrace.render import render_rows

        x0, y0, x1, y1 = payload["region"]
        return render_rows(app.scene, app.camera, y0, y1, app.width,
                           app.height, app.max_depth,
                           samples_per_axis=app_samples)

    app.execute = execute_with_aa  # type: ignore[method-assign]

    def body(runtime):
        cluster = testbed_small(runtime)
        framework = AdaptiveClusterFramework(runtime, cluster, app)
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    report = run_simulation(body)
    image = report.solution
    with open(args.output, "wb") as fh:
        fh.write(f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode())
        fh.write(image.tobytes())
    print(f"wrote {args.output} ({image.nbytes:,} bytes, "
          f"{app.n_strips} strips, AA {args.aa}x{args.aa})")
    print(f"parallel: {report.parallel_ms:,.0f} virtual ms")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
