"""repro — reproduction of "A Framework for Adaptive Cluster Computing
using JavaSpaces" (Batheja & Parashar, CLUSTER 2001).

Layered architecture (bottom → top):

* :mod:`repro.sim` / :mod:`repro.runtime` — deterministic virtual-time
  kernel and the runtime abstraction (simulated vs. threaded).
* :mod:`repro.net` — simulated network (datagram/multicast/stream).
* :mod:`repro.tuplespace` — JavaSpaces-style tuple space (entries,
  templates, leases, transactions, notify).
* :mod:`repro.jini` — discovery/lookup/join substrate.
* :mod:`repro.snmp` — SNMP manager/agent over a HOST-RESOURCES-style MIB.
* :mod:`repro.node` — cluster machines, processor-sharing CPU model,
  load simulators.
* :mod:`repro.core` — the paper's framework: master/worker modules,
  network management module (monitoring agent + inference engine +
  rule-base protocol), remote node configuration engine.
* :mod:`repro.apps` — the three evaluated applications (option pricing,
  ray tracing, PageRank-based web prefetching).
* :mod:`repro.experiments` — harnesses regenerating every table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
