#!/usr/bin/env python
"""Ray tracing with the tuple space partitioned over 8 shards.

The 600×600 benchmark scene again — but this time the space is not one
JavaSpaces server on the master: it is consistent-hash partitioned over
eight dedicated space hosts (the paper's deployment shape, scaled out).
Each strip's ``TaskEntry``/``ResultEntry`` pair routes by ``task_id`` to
one shard, so worker traffic — and above all the fat result strips on
the drain path — spreads over eight host uplinks instead of queueing on
one.

The composed image must be byte-identical to the single-space render:
sharding is a transport-layer change, invisible to the application.

A render this size is compute-bound, so sharding buys little there —
the second half of the example runs the egress-bound strip job (64 KB
results, cheap tasks) where the space uplink IS the bottleneck, and
prints the 1 → 8 shard scaling table.

Run:  python examples/sharded_raytrace.py [output.ppm]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps.raytrace import RayTracingApplication
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC


def run_render(shards: int):
    app = RayTracingApplication()

    def body(runtime):
        cluster = Cluster(runtime, master_spec=FAST_PC)
        cluster.add_workers(8, FAST_PC)
        cluster.add_space_hosts(shards, FAST_PC)
        config = FrameworkConfig(
            shards=shards,
            shard_placement="dedicated",
            worker_prefetch=4,
            master_seed_batch=8,
            master_drain_batch=16,
        )
        framework = AdaptiveClusterFramework(runtime, cluster, app, config)
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    return app, run_simulation(body)


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "sharded_raytrace_out.ppm"

    app, baseline = run_render(shards=1)
    _, sharded = run_render(shards=8)
    image = sharded.solution

    identical = np.array_equal(image, baseline.solution)
    print(f"rendered {app.width}x{app.height} in {app.n_strips} strips "
          f"on 8 workers")
    print(f"1 shard  : {baseline.parallel_ms:,.0f} virtual ms")
    print(f"8 shards : {sharded.parallel_ms:,.0f} virtual ms "
          f"({baseline.parallel_ms / sharded.parallel_ms:.2f}x)")
    print(f"sharded image identical to single-space render: {identical}")

    height, width, _ = image.shape
    with open(output, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode())
        fh.write(image.tobytes())
    print(f"image written to {output} ({image.nbytes:,} bytes)")

    from repro.experiments.scalability import (
        format_shard_table,
        shard_scaling_experiment,
    )

    print()
    print("egress-bound strip job (64 KB results), 16 workers:")
    print(format_shard_table(shard_scaling_experiment([1, 2, 4, 8])))


if __name__ == "__main__":
    main()
