#!/usr/bin/env python
"""Regenerate the paper's entire evaluation section in one run.

Prints Figures 6–11 (as tables/series), Experiment 3 and Table 2 — the
same artifacts the benchmarks assert on, gathered in one report.

Run:  python examples/reproduce_paper.py            # everything (~10 s)
      python examples/reproduce_paper.py --quick    # skip the big sweeps
"""

from __future__ import annotations

import sys
import time

from repro.experiments.report import run_full_evaluation


def main() -> None:
    quick = "--quick" in sys.argv
    started = time.time()
    report = run_full_evaluation(
        scalability=not quick,
        dynamics=not quick,
        progress=lambda msg: print(f"  … {msg}", file=sys.stderr),
    )
    print(report.render())
    print(f"\n[regenerated in {time.time() - started:.1f} s of real time]",
          file=sys.stderr)


if __name__ == "__main__":
    main()
