#!/usr/bin/env python
"""Parallel ray tracing on the five-PC cluster (§5.1.2).

Renders the 600×600 benchmark scene (three spheres over a checkered
floor, shadows + reflections) in 24 scanline strips distributed through
the framework, verifies the composition against a sequential render, and
writes the image as a PPM file.

Run:  python examples/ray_tracing.py [output.ppm]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.apps.raytrace import RayTracingApplication, render_image
from repro.core.framework import AdaptiveClusterFramework
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small


def write_ppm(path: str, image: np.ndarray) -> None:
    height, width, _ = image.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode())
        fh.write(image.tobytes())


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "raytrace_out.ppm"
    app = RayTracingApplication()

    def body(runtime):
        cluster = testbed_small(runtime)  # 5 × 800 MHz
        framework = AdaptiveClusterFramework(runtime, cluster, app)
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report

    print(f"rendering {app.width}x{app.height} in {app.n_strips} strips "
          f"of {app.strip_rows} rows on 5 workers…")
    report = run_simulation(body)
    image = report.solution

    reference = render_image(app.scene, app.camera, app.width, app.height,
                             app.max_depth)
    identical = np.array_equal(image, reference)

    write_ppm(output, image)
    print(f"image written to {output} ({image.nbytes:,} bytes)")
    print(f"parallel composition matches sequential render: {identical}")
    print(f"virtual parallel time : {report.parallel_ms:,.0f} ms")
    print(f"  task planning       : {report.planning_ms:,.0f} ms (constant, small)")
    print(f"  result aggregation  : {report.aggregation_ms:,.0f} ms")
    print("strips per worker     :",
          dict(sorted(report.results_by_worker.items())))


if __name__ == "__main__":
    main()
