#!/usr/bin/env python
"""Fault tolerance demo: workers die mid-run, the answer survives.

Prices the paper's option on the 13-PC cluster with *transactional* task
takes while crashing a third of the workers mid-computation.  The dropped
connections abort the in-flight transactions, the task entries reappear
in the space, and the survivors finish the job — "in event of a partial
failure, the transaction either completes successfully or does not
execute at all" (§3).

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.apps.options import OptionPricingApplication, black_scholes_price
from repro.apps.options.model import OptionContract, OptionType
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_large

CRASHES = [(4_000.0, 0), (7_000.0, 1), (10_000.0, 2), (13_000.0, 3)]


def main() -> None:
    app = OptionPricingApplication()

    def body(runtime):
        cluster = testbed_large(runtime)
        framework = AdaptiveClusterFramework(
            runtime, cluster, app,
            FrameworkConfig(transactional_takes=True, poll_interval_ms=500.0),
        )

        def killer():
            previous = 0.0
            for at_ms, index in CRASHES:
                runtime.sleep(at_ms - previous)
                victim = framework.worker_hosts[index]
                print(f"  t={at_ms / 1000:.0f}s: {victim.node.hostname} crashes "
                      f"({victim.tasks_done} tasks done)")
                victim.crash()
                previous = at_ms

        framework.start()
        runtime.spawn(killer, name="killer")
        report = framework.run()
        survivors = {
            host.node.hostname: host.tasks_done
            for host in framework.worker_hosts if not host.crashed
        }
        framework.shutdown()
        return report, survivors

    print(f"pricing with {len(CRASHES)} worker crashes injected…")
    report, survivors = run_simulation(body)
    solution = report.solution

    european = black_scholes_price(
        OptionContract(OptionType.CALL, 100, 100, 0.05, 0.2, 1.0)
    )
    total = sum(report.results_by_worker.values())
    print(f"\nall {report.task_count} tasks completed ({total} results), "
          f"despite {len(CRASHES)} crashes")
    print(f"price: {solution['price']:.4f}  "
          f"interval [{solution['ci_low']:.4f}, {solution['ci_high']:.4f}]  "
          f"(Black–Scholes {european:.4f}: "
          f"{'inside' if solution['ci_low'] <= european <= solution['ci_high'] else 'OUTSIDE'})")
    print(f"parallel time: {report.parallel_ms:,.0f} virtual ms")
    print(f"surviving workers carried "
          f"{sum(report.results_by_worker.get(w, 0) for w in survivors)} results")


if __name__ == "__main__":
    main()
