#!/usr/bin/env python
"""Quickstart: real parallel computing on the threaded runtime.

Runs a Monte Carlo π estimator through the full framework stack — tuple
space, Jini lookup, SNMP monitoring, rule-base signals — with *real OS
threads* doing the computation.  This is the same code path the
simulated experiments use; only the runtime binding differs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveClusterFramework, FrameworkConfig
from repro.core.application import Application, ClassLoadProfile, Task
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC
from repro.runtime import ThreadedRuntime


class MonteCarloPi(Application):
    """Estimate π by dart throwing; one task per block of samples."""

    app_id = "quickstart-pi"

    def __init__(self, n_tasks: int = 48, samples_per_task: int = 400_000) -> None:
        self.n_tasks = n_tasks
        self.samples_per_task = samples_per_task

    def plan(self) -> list[Task]:
        return [Task(task_id=i, payload={"seed": i, "n": self.samples_per_task})
                for i in range(self.n_tasks)]

    def execute(self, payload) -> int:
        rng = np.random.default_rng(payload["seed"])
        xy = rng.random((payload["n"], 2))
        return int(((xy**2).sum(axis=1) <= 1.0).sum())

    def aggregate(self, results) -> float:
        total_inside = sum(results.values())
        total_samples = self.n_tasks * self.samples_per_task
        return 4.0 * total_inside / total_samples

    # Zero modelled cost: on the threaded runtime the real computation
    # takes real time, so the cost model must not add artificial sleeps.
    def task_cost_ms(self, task: Task) -> float:
        return 0.0

    def planning_cost_ms(self, task: Task) -> float:
        return 0.0

    def aggregation_cost_ms(self, task_id: int, result) -> float:
        return 0.0

    def classload_profile(self) -> ClassLoadProfile:
        return ClassLoadProfile(work_ref_ms=0.0, demand_percent=0.0,
                                bundle_bytes=10_000)


def main() -> None:
    runtime = ThreadedRuntime()
    cluster = Cluster(runtime)
    cluster.add_workers(4, FAST_PC)

    app = MonteCarloPi()
    framework = AdaptiveClusterFramework(
        runtime, cluster, app,
        FrameworkConfig(poll_interval_ms=100.0, worker_poll_ms=50.0),
    )
    framework.start()
    print(f"cluster: {len(cluster.workers)} workers; "
          f"{app.n_tasks} tasks x {app.samples_per_task} samples")

    report = framework.run()
    framework.shutdown()

    print(f"π ≈ {report.solution:.5f}   (error {abs(report.solution - np.pi):.5f})")
    print(f"wall time: {report.parallel_ms:.0f} ms")
    print("tasks per worker:",
          dict(sorted(report.results_by_worker.items())))
    runtime.shutdown()


if __name__ == "__main__":
    main()
