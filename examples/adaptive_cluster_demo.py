#!/usr/bin/env python
"""Adaptive worker management demo (the Figs 9–11 experiment, live).

Drives one ray-tracing worker through the paper's full signal cycle —
Start (remote class-loading spike), Stop under a saturating interactive
load, Start again, Pause under transient 30–50 % traffic, Resume — and
prints the CPU-usage history as ASCII plus the signal reaction table.

Run:  python examples/adaptive_cluster_demo.py [option-pricing|ray-tracing|web-prefetch]
"""

from __future__ import annotations

import sys

from repro.experiments import (
    adaptation_experiment,
    APP_FACTORIES,
    CLUSTER_FACTORIES,
)


def ascii_history(history, width: int = 56, t_max: float = 44_000.0) -> str:
    lines = [f"{'t (s)':>6} {'CPU %':>6}  0%{' ' * (width - 6)}100%"]
    step = t_max / 44.0
    t, index = 0.0, 0
    while t <= t_max:
        while index + 1 < len(history) and history[index + 1][0] <= t:
            index += 1
        level = history[index][1]
        bar = "#" * int(round(level / 100.0 * width))
        lines.append(f"{t / 1000.0:>6.1f} {level:>6.0f}  |{bar}")
        t += step
    return "\n".join(lines)


def main() -> None:
    app_id = sys.argv[1] if len(sys.argv) > 1 else "ray-tracing"
    if app_id not in APP_FACTORIES:
        raise SystemExit(f"unknown app {app_id!r}; pick from {sorted(APP_FACTORIES)}")

    print(f"adaptation protocol analysis — {app_id}")
    print("load script: t=8s loadsim2 on (100%), t=16s off, "
          "t=26s loadsim1 on (30–50%), t=34s off")
    print()
    result = adaptation_experiment(APP_FACTORIES[app_id], CLUSTER_FACTORIES[app_id])

    print("worker CPU usage history (total %):")
    print(ascii_history(result.cpu_history))
    print()
    print(result.format_table())
    print()
    print(f"signal cycle : {' → '.join(result.signals_in_order)}")
    print(f"class loads  : {result.class_loads} "
          "(reload after Stop, none on Resume)")
    print(f"SNMP polls   : {result.snmp_polls}")


if __name__ == "__main__":
    main()
