#!/usr/bin/env python
"""Stock-option pricing on the paper's thirteen-PC cluster (§5.1.1).

Prices a Bermudan call with the Broadie–Glasserman stochastic-tree
method: 10 000 Monte Carlo simulations as 100 independent subtasks
distributed through the JavaSpaces framework, on the simulated 13×300 MHz
testbed.  Results are real (the math executes); time is virtual.

Run:  python examples/option_pricing.py
"""

from __future__ import annotations

from repro.apps.options import (
    OptionContract,
    OptionPricingApplication,
    OptionType,
    black_scholes_price,
)
from repro.core.framework import AdaptiveClusterFramework
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_large


def main() -> None:
    app = OptionPricingApplication()

    def body(runtime):
        cluster = testbed_large(runtime)  # 13 × 300 MHz + 800 MHz master
        framework = AdaptiveClusterFramework(runtime, cluster, app)
        framework.start()
        report = framework.run()
        worker_times = framework.worker_times_ms()
        framework.shutdown()
        return report, worker_times

    report, worker_times = run_simulation(body)
    solution = report.solution

    contract = app.contract
    european = black_scholes_price(
        OptionContract(OptionType.CALL, contract.spot, contract.strike,
                       contract.rate, contract.volatility,
                       contract.maturity_years)
    )

    print(f"contract: at-the-money call, S=K={contract.spot:.0f}, "
          f"r={contract.rate:.0%}, σ={contract.volatility:.0%}, "
          f"T={contract.maturity_years:.0f}y, "
          f"{contract.exercise_dates} exercise dates")
    print(f"Broadie–Glasserman price : {solution['price']:.4f}")
    print(f"  low / high estimators  : {solution['low']:.4f} / {solution['high']:.4f}")
    print(f"  95% interval           : [{solution['ci_low']:.4f}, {solution['ci_high']:.4f}]")
    print(f"Black–Scholes (European) : {european:.4f}  "
          f"({'inside' if solution['ci_low'] <= european <= solution['ci_high'] else 'OUTSIDE'} the interval)")
    print()
    print(f"virtual parallel time    : {report.parallel_ms:,.0f} ms")
    print(f"  task planning          : {report.planning_ms:,.0f} ms")
    print(f"  result aggregation     : {report.aggregation_ms:,.0f} ms")
    busiest = max((t or 0.0) for t in worker_times.values())
    print(f"  max worker time        : {busiest:,.0f} ms")
    print("tasks per worker         :",
          dict(sorted(report.results_by_worker.items())))


if __name__ == "__main__":
    main()
