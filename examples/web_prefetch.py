#!/usr/bin/env python
"""PageRank-based web page pre-fetching (§5.1.3), end to end.

1. Builds a 500-page synthetic web cluster.
2. Computes its PageRank vector *through the framework*: each power-
   iteration round is distributed as 25 strip tasks (500×500 matrix,
   strips of 20), with the inter-iteration dependency resolved at the
   master between rounds.
3. Uses the ranks to drive the pre-fetch cache during a simulated
   browsing session and reports the cache hit rate with and without
   pre-fetching.

Run:  python examples/web_prefetch.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.prefetch import (
    DistributedPageRank,
    PageRankPrefetcher,
    PrefetchApplication,
    PrefetchCache,
    generate_cluster,
    pagerank_power,
)
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small

ROUNDS = 12


def distributed_pagerank(app: PrefetchApplication) -> tuple[np.ndarray, float, int]:
    """Run up to ``ROUNDS`` framework rounds; returns (ranks, ms, rounds)."""

    def body(runtime):
        cluster = testbed_small(runtime)
        driver = DistributedPageRank(runtime, cluster, app,
                                     tol=1e-7, max_rounds=ROUNDS)
        run = driver.run()
        return run.ranks, run.total_parallel_ms, run.rounds

    return run_simulation(body)


def browsing_session(cluster, ranks, prefetch: bool) -> float:
    """Simulate a user following mostly-important links; return hit rate."""
    cache = PrefetchCache(capacity=48)
    prefetcher = PageRankPrefetcher(cluster, ranks, cache=cache,
                                    top_k=3 if prefetch else 0)
    rng = np.random.default_rng(7)
    url = cluster.page(0).url
    for _ in range(200):
        prefetcher.handle_request(url)
        page = cluster.by_url(url)
        ranked = sorted(page.links, key=lambda p: ranks[p], reverse=True)
        next_id = ranked[0] if rng.random() < 0.7 else int(rng.choice(page.links))
        url = cluster.page(next_id).url
    return cache.hit_rate


def main() -> None:
    web = generate_cluster(n_pages=500, seed=0)
    app = PrefetchApplication(cluster=web)

    print(f"web cluster: {len(web)} pages at {web.domain}")
    print(f"distributing PageRank rounds "
          f"({app.n_strips} strip tasks each) over 5 workers…")
    ranks, total_ms, rounds = distributed_pagerank(app)

    reference, iterations = pagerank_power(app.matrix, tol=1e-12)
    drift = float(np.abs(ranks - reference).sum())
    print(f"virtual time for {rounds} rounds: {total_ms:,.0f} ms")
    print(f"L1 distance to converged PageRank ({iterations} iters): {drift:.2e}")

    top = np.argsort(ranks)[::-1][:5]
    print("top-ranked pages:",
          [web.page(int(p)).url.rsplit('/', 1)[-1] for p in top])

    hit_plain = browsing_session(web, ranks, prefetch=False)
    hit_prefetch = browsing_session(web, ranks, prefetch=True)
    print(f"browsing-session cache hit rate: "
          f"{hit_plain:.0%} without pre-fetching → "
          f"{hit_prefetch:.0%} with rank-based pre-fetching")


if __name__ == "__main__":
    main()
