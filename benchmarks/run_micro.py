"""Run the substrate microbenchmarks and record BENCH_micro.json.

This is the perf-trajectory harness: it times the same workloads as
``bench_micro_substrates.py`` (space write+take, template selectivity,
kernel event rate, process handoff rate, and the blocked-taker contention
workload) without the pytest-benchmark machinery, so it can run anywhere —
CI smoke jobs, pre/post comparisons, bisection scripts.

Output schema (``BENCH_micro.json``)::

    {
      "schema": 1,
      "baseline": {<metric>: <ops/s>, ...},   # first ever recording, kept
      "current":  {<metric>: <ops/s>, ...},   # overwritten on every run
      "speedup":  {<metric>: current/baseline, ...}
    }

The ``baseline`` section is preserved across runs (it is seeded from the
first recording and only replaced with ``--rebaseline``), so the JSON
always answers "how much faster than when we started measuring?".

Usage::

    PYTHONPATH=src python benchmarks/run_micro.py [--rounds N] [--smoke]
        [--rebaseline] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable

from repro.runtime import SimulatedRuntime
from repro.sim import SimKernel
from repro.tuplespace import JavaSpace
from tests.tuplespace.entries import TaskEntry

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_micro.json"


def _time(fn: Callable[[], int], rounds: int) -> float:
    """Best-of-``rounds`` ops/second for ``fn`` (returns its op count)."""
    best = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


# ---------------------------------------------------------------- workloads --

def space_write_take(n: int = 2000) -> int:
    """Write+take cycles through the space (in-process, no network)."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def body():
        for i in range(n):
            space.write(TaskEntry("bench", i, i))
        for _ in range(n):
            space.take(TaskEntry(), timeout_ms=0.0)

    proc = runtime.kernel.spawn(body, name="bench")
    runtime.kernel.run_until_idle()
    assert proc.finished and proc.error is None
    runtime.shutdown()
    return 2 * n


def space_selectivity(n: int = 1000, takes: int = 100) -> int:
    """Selective takes against an ``n``-entry store."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def body():
        for i in range(n):
            space.write(TaskEntry(f"app{i % 10}", i, None))
        for _ in range(takes):
            assert space.take(TaskEntry(app="app7"), timeout_ms=0.0) is not None

    proc = runtime.kernel.spawn(body, name="bench")
    runtime.kernel.run_until_idle()
    assert proc.finished and proc.error is None
    runtime.shutdown()
    return n + takes


def kernel_event_rate(n: int = 20000) -> int:
    """Pure event-loop throughput (no process handoffs)."""
    kernel = SimKernel()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1

    for i in range(n):
        kernel.call_later(float(i % 97), tick)
    kernel.run()
    assert counter["n"] == n
    kernel.shutdown()
    return n


def process_handoff_rate(n: int = 2000) -> int:
    """Thread-backed process context switches."""
    kernel = SimKernel()

    def proc():
        for _ in range(n):
            kernel.sleep(1.0)

    kernel.spawn(proc, name="pinger")
    kernel.run()
    kernel.shutdown()
    return n


def contention_write_take(writes: int = 500, takers: int = 16) -> int:
    """1 writer, ``takers`` blocked takers on distinct templates.

    Only one taker's template matches the written entries; a scalable
    space wakes just that taker per write, not the whole herd.
    """
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)
    taken = []

    def taker(app: str):
        while True:
            entry = space.take(TaskEntry(app=app), timeout_ms=5000.0)
            if entry is None:
                return
            taken.append(entry.task_id)

    def writer():
        for i in range(writes):
            space.write(TaskEntry("app0", i, None))
            runtime.sleep(1.0)

    for t in range(takers):
        runtime.spawn(lambda t=t: taker(f"app{t}"), name=f"taker{t}")
    runtime.spawn(writer, name="writer")
    runtime.kernel.run_until_idle()
    assert len(taken) == writes
    runtime.shutdown()
    return writes


def contention_wakeups_per_write(writes: int = 200, takers: int = 16) -> float:
    """Condition wakeups issued per write under the contention workload.

    Pre-overhaul (``notify_all``) this is ~``takers``; with per-template
    wait queues it is ~1.  Reported directly (not ops/s).  Returns 0 when
    the space does not expose a wakeup counter (pre-overhaul builds).
    """
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def taker(app: str):
        while space.take(TaskEntry(app=app), timeout_ms=2000.0) is not None:
            pass

    def writer():
        for i in range(writes):
            space.write(TaskEntry("app0", i, None))
            runtime.sleep(1.0)

    for t in range(takers):
        runtime.spawn(lambda t=t: taker(f"app{t}"), name=f"taker{t}")
    runtime.spawn(writer, name="writer")
    runtime.kernel.run_until_idle()
    wakeups = space.stats.get("wakeups", 0)
    runtime.shutdown()
    return wakeups / writes


# -------------------------------------------------------------------- driver --

def run(rounds: int, smoke: bool) -> dict[str, float]:
    scale = 10 if smoke else 1
    results = {
        "space_write_take_ops_per_s": _time(
            lambda: space_write_take(2000 // scale), rounds),
        "space_selectivity_ops_per_s": _time(
            lambda: space_selectivity(1000 // scale, 100 // scale), rounds),
        "kernel_events_per_s": _time(
            lambda: kernel_event_rate(20000 // scale), rounds),
        "process_handoffs_per_s": _time(
            lambda: process_handoff_rate(2000 // scale), rounds),
        "contention_write_take_ops_per_s": _time(
            lambda: contention_write_take(500 // scale), rounds),
        "contention_wakeups_per_write": contention_wakeups_per_write(
            200 // scale),
    }
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="take the best of N rounds per workload")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads; checks the harness, not perf")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the stored baseline with this run")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    if args.rounds < 1:
        parser.error(f"--rounds must be >= 1 (got {args.rounds})")

    current = run(args.rounds, args.smoke)

    doc: dict = {"schema": 1}
    if args.output.exists():
        try:
            doc = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            pass
    baseline = doc.get("baseline")
    if baseline is None or args.rebaseline:
        baseline = dict(current)

    speedup = {
        k: round(current[k] / baseline[k], 3)
        for k in current
        if k in baseline and baseline[k] and k.endswith("_per_s")
    }
    doc.update({"schema": 1, "baseline": baseline, "current": current,
                "speedup": speedup})
    if not args.smoke:
        args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    for key in sorted(current):
        extra = f"  ({speedup[key]}x vs baseline)" if key in speedup else ""
        print(f"{key:>36}: {current[key]:>14.1f}{extra}")
    if args.smoke:
        print("smoke run: harness OK, BENCH_micro.json left untouched")
    else:
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
