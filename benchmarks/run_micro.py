"""Run the substrate microbenchmarks and record BENCH_micro.json.

This is the perf-trajectory harness: it times the same workloads as
``bench_micro_substrates.py`` (space write+take, template selectivity,
kernel event rate, process handoff rate, and the blocked-taker contention
workload) without the pytest-benchmark machinery, so it can run anywhere —
CI smoke jobs, pre/post comparisons, bisection scripts.

Output schema (``BENCH_micro.json``)::

    {
      "schema": 1,
      "baseline": {<metric>: <ops/s>, ...},   # first ever recording, kept
      "current":  {<metric>: <ops/s>, ...},   # overwritten on every run
      "speedup":  {<metric>: current/baseline, ...}
    }

The ``baseline`` section is preserved across runs (it is seeded from the
first recording and only replaced with ``--rebaseline``), so the JSON
always answers "how much faster than when we started measuring?".

Two end-to-end workloads ride along with the substrate microbenchmarks:
a raytrace-shaped synthetic job (600×600 plane, 24 strips, 4 workers)
run unpipelined vs pipelined (worker prefetch + batched RPC + master
batch seed/drain), and the durable-commit path under
``fsync_policy=always`` vs ``group``.

Usage::

    PYTHONPATH=src python benchmarks/run_micro.py [--rounds N] [--smoke]
        [--quick] [--check] [--rebaseline] [--output PATH]

``--quick`` is the CI smoke mode: one round, nothing written, and the
run fails if any throughput metric drops below ``CHECK_FLOOR`` (0.8×) of
the committed ``current`` values, below ``BASELINE_FLOOR`` (0.75×) of
the preserved ``baseline`` values, or below an ``ABS_FLOORS`` absolute
floor (same as ``--check``).  The baseline-relative floor exists because
the committed-relative one can be ratcheted down: a PR that regresses a
cell and regenerates the JSON ships its own lowered reference.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.runtime import SimulatedRuntime
from repro.sim import SimKernel
from repro.tuplespace import JavaSpace
from tests.tuplespace.entries import TaskEntry

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_micro.json"

#: --check/--quick fail when current/committed drops below this.
CHECK_FLOOR = 0.8

#: --check also fails when current/baseline drops below this.  The
#: committed-relative floor alone has a ratchet-down loophole: a PR that
#: regresses a cell *and* regenerates BENCH_micro.json ships its own
#: lowered reference, so the next run passes trivially (that is exactly
#: how an 0.677x e2e_pipelined cell got past the 0.8x gate).  The
#: ``baseline`` section is preserved across runs — only ``--rebaseline``
#: may move it — so this floor cannot be ratcheted down silently.
BASELINE_FLOOR = 0.75

#: Absolute ops/s floors for the codec-path headline cells (measured
#: with ``codec="compact"``); chosen ~0.6x of the recorded numbers so a
#: noisy CI box does not flake, while a real hot-path regression (say,
#: the codec silently falling back to pickle) still trips them.
ABS_FLOORS = {
    "space_write_take_ops_per_s": 120_000.0,
    "durable_commits_group_per_s": 60_000.0,
}

#: Per-metric overrides for BASELINE_FLOOR.  The e2e wall-clock cells
#: carry the cumulative per-task cost of features landed since the
#: baseline was recorded (epoch fencing on every take, admission/fair
#: share accounting, checkpointing) on top of 1-core CI jitter, so they
#: sit structurally below 0.75x of the original figure.  0.6x stays as
#: a hard backstop; the *structural* regression these cells used to be
#: the only guard for — payload inflation — is now gated exactly by the
#: deterministic wire-cost ceilings below.
BASELINE_FLOOR_OVERRIDES = {
    "e2e_pipelined_tasks_per_s": 0.6,
    "e2e_unpipelined_tasks_per_s": 0.6,
    # fsync-latency-bound, not code-bound: cProfile on the 0.79x run puts
    # 79% of the wall time inside posix.fsync (0.147s of 0.187s for 400
    # commits); the codec + frame encode cost is ~17µs/commit.  The same
    # box reproduces 6,225–7,609 ops/s across runs — a spread that spans
    # the recorded 7,162 baseline — so the cell tracks the CI disk's
    # fsync latency, and a stricter floor would flake on a slower device
    # while catching nothing the ABS_FLOORS/group-commit cells miss.
    "durable_commits_always_per_s": 0.65,
}

#: --check fails when a deterministic wire-cost cell (messages/KB the
#: simulated network carries for one warm pipelined job) grows beyond
#: this multiple of the committed value.  These counts are exact and
#: replayable — no wall-clock noise — so the ceiling is tight; they are
#: the gate that would have caught the entry-frame inflation behind the
#: 0.677x e2e drop the throughput floors missed.
WIRE_CEIL = 1.25
WIRE_CELLS = ("e2e_pipelined_job_messages", "e2e_pipelined_job_kb")

#: --check also fails when the 16-shard e2e throughput falls below this
#: multiple of the 1-shard number (both deterministic virtual-time
#: figures, so the ratio is noise-free).
SHARD_SPEEDUP_FLOOR = 4.0

#: --check fails when Jain's fairness index of DRR grants across equal
#: tenants falls below this (1.0 = perfectly fair; an absolute floor,
#: the workload is deterministic).
JAIN_FAIRNESS_FLOOR = 0.95

#: --check fails when the victim's p99 completion-gap under an aggressor
#: grows beyond this multiple of the committed value (lower is better,
#: so the throughput floor cannot gate it; virtual-time, noise-free).
CONTENTION_P99_CEIL = 1.25


def _time(fn: Callable[[], int], rounds: int) -> float:
    """Best-of-``rounds`` ops/second for ``fn`` (returns its op count)."""
    best = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


# ---------------------------------------------------------------- workloads --

def space_write_take(n: int = 2000, codec: str = "pickle") -> int:
    """Write+take cycles through the space (in-process, no network)."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime, codec=codec)

    def body():
        for i in range(n):
            space.write(TaskEntry("bench", i, i))
        for _ in range(n):
            space.take(TaskEntry(), timeout_ms=0.0)

    proc = runtime.kernel.spawn(body, name="bench")
    runtime.kernel.run_until_idle()
    assert proc.finished and proc.error is None
    runtime.shutdown()
    return 2 * n


def space_selectivity(n: int = 1000, takes: int = 100) -> int:
    """Selective takes against an ``n``-entry store."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def body():
        for i in range(n):
            space.write(TaskEntry(f"app{i % 10}", i, None))
        for _ in range(takes):
            assert space.take(TaskEntry(app="app7"), timeout_ms=0.0) is not None

    proc = runtime.kernel.spawn(body, name="bench")
    runtime.kernel.run_until_idle()
    assert proc.finished and proc.error is None
    runtime.shutdown()
    return n + takes


def kernel_event_rate(n: int = 20000) -> int:
    """Pure event-loop throughput (no process handoffs)."""
    kernel = SimKernel()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1

    for i in range(n):
        kernel.call_later(float(i % 97), tick)
    kernel.run()
    assert counter["n"] == n
    kernel.shutdown()
    return n


def process_handoff_rate(n: int = 2000) -> int:
    """Thread-backed process context switches."""
    kernel = SimKernel()

    def proc():
        for _ in range(n):
            kernel.sleep(1.0)

    kernel.spawn(proc, name="pinger")
    kernel.run()
    kernel.shutdown()
    return n


def contention_write_take(writes: int = 500, takers: int = 16) -> int:
    """1 writer, ``takers`` blocked takers on distinct templates.

    Only one taker's template matches the written entries; a scalable
    space wakes just that taker per write, not the whole herd.
    """
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)
    taken = []

    def taker(app: str):
        while True:
            entry = space.take(TaskEntry(app=app), timeout_ms=5000.0)
            if entry is None:
                return
            taken.append(entry.task_id)

    def writer():
        for i in range(writes):
            space.write(TaskEntry("app0", i, None))
            runtime.sleep(1.0)

    for t in range(takers):
        runtime.spawn(lambda t=t: taker(f"app{t}"), name=f"taker{t}")
    runtime.spawn(writer, name="writer")
    runtime.kernel.run_until_idle()
    assert len(taken) == writes
    runtime.shutdown()
    return writes


def contention_wakeups_per_write(writes: int = 200, takers: int = 16) -> float:
    """Condition wakeups issued per write under the contention workload.

    Pre-overhaul (``notify_all``) this is ~``takers``; with per-template
    wait queues it is ~1.  Reported directly (not ops/s).  Returns 0 when
    the space does not expose a wakeup counter (pre-overhaul builds).
    """
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def taker(app: str):
        while space.take(TaskEntry(app=app), timeout_ms=2000.0) is not None:
            pass

    def writer():
        for i in range(writes):
            space.write(TaskEntry("app0", i, None))
            runtime.sleep(1.0)

    for t in range(takers):
        runtime.spawn(lambda t=t: taker(f"app{t}"), name=f"taker{t}")
    runtime.spawn(writer, name="writer")
    runtime.kernel.run_until_idle()
    wakeups = space.stats.get("wakeups", 0)
    runtime.shutdown()
    return wakeups / writes


def _strip_job_framework(runtime, workers: int, strips: int,
                         prefetch: int, seed_batch: int, drain_batch: int,
                         trace: bool, codec: str):
    """The raytrace-shaped 600x600 strip job on a small testbed."""
    from repro.core.application import Application, ClassLoadProfile, Task
    from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
    from repro.node.cluster import testbed_small
    from repro.sim.rng import RandomStreams

    width, height = 600, 600
    strip_rows = height // strips

    class StripJob(Application):
        app_id = "bench-strips"

        def plan(self):
            return [Task(task_id=i,
                         payload={"region": (0, i * strip_rows, width,
                                             (i + 1) * strip_rows)})
                    for i in range(strips)]

        def execute(self, payload):
            x0, y0, x1, y1 = payload["region"]
            return [(x1 - x0) * y for y in range(y0, y1)]

        def aggregate(self, results):
            return sum(sum(rows) for rows in results.values())

        def task_cost_ms(self, task):
            return 2_500.0

        def planning_cost_ms(self, task):
            return 20.0

        def aggregation_cost_ms(self, task_id, result):
            return 30.0

        def classload_profile(self):
            return ClassLoadProfile(work_ref_ms=100.0, demand_percent=80.0,
                                    bundle_bytes=50_000)

    cluster = testbed_small(runtime, workers=workers,
                            streams=RandomStreams(7))
    framework = AdaptiveClusterFramework(
        runtime, cluster, StripJob(),
        FrameworkConfig(
            monitoring=False,
            compute_real=True,
            transactional_takes=True,
            worker_poll_ms=10_000.0,
            dead_letter_poll_ms=10_000.0,
            worker_prefetch=prefetch,
            master_seed_batch=seed_batch,
            master_drain_batch=drain_batch,
            trace=trace,
            codec=codec,
        ),
    )
    return cluster, framework


def e2e_job_wire_cost(codec: str = "compact", strips: int = 24,
                      workers: int = 4) -> dict[str, float]:
    """Simulated-network traffic of one warm pipelined job: deterministic.

    Counts RPC messages and payload bytes between the warm-up job and
    the measured job on the modelled network — exact, replayable
    figures, immune to wall-clock noise.  These are the cells that catch
    a payload-inflation regression (the 0.677x e2e drop came from entry
    frames growing field by field across PRs, which wall-clock gates on
    a noisy box cannot separate from scheduler jitter).
    """
    from repro.experiments.harness import run_simulation

    def body(runtime):
        cluster, framework = _strip_job_framework(
            runtime, workers=workers, strips=strips, prefetch=6,
            seed_batch=strips, drain_batch=strips, trace=False, codec=codec)
        framework.start()
        framework.start_all_workers()
        warmup = framework.master.run()
        stats = cluster.network.stats
        before = (stats["messages"], stats["message_bytes"])
        report = framework.master.run()
        after = (stats["messages"], stats["message_bytes"])
        framework.shutdown()
        assert warmup.complete and report.complete, \
            "benchmark job did not complete"
        return after[0] - before[0], after[1] - before[1]

    messages, payload_bytes = run_simulation(body)
    return {
        "e2e_pipelined_job_messages": float(messages),
        "e2e_pipelined_job_kb": payload_bytes / 1024.0,
    }


def doctor_phase_cells(strips: int = 24, workers: int = 4) -> dict[str, float]:
    """Deterministic phase attribution of one warm pipelined job.

    Runs the raytrace-shaped strip job traced (warm-up job first, the
    doctor analyzes the second run's spans) and reports each phase's
    attributed virtual milliseconds as a ``doctor_<phase>_ms`` cell.
    The figures live on the simulation clock, so they are exact and
    replayable — when a wall-clock e2e gate trips, ``--check`` compares
    these cells against the committed ones to say *which phase* grew
    (see :func:`repro.telemetry.doctor.explain_phase_regression`).
    """
    from repro.experiments.harness import run_simulation
    from repro.telemetry import analyze_job
    from repro.telemetry.doctor import PHASE_ORDER

    def body(runtime):
        cluster, framework = _strip_job_framework(
            runtime, workers=workers, strips=strips, prefetch=6,
            seed_batch=strips, drain_batch=strips, trace=True,
            codec="compact")
        framework.start()
        framework.start_all_workers()
        warmup = framework.master.run()
        report = framework.master.run()
        framework.shutdown()
        assert warmup.complete and report.complete, \
            "benchmark job did not complete"
        return analyze_job(framework.tracer)

    doc = run_simulation(body)
    assert abs(doc.attributed_fraction() - 1.0) <= 0.01, \
        f"doctor attribution covers {doc.attributed_fraction():.3f} of " \
        f"the job window, expected 1.0 +/- 0.01"
    by_phase = doc.phase_ms()
    cells = {f"doctor_{phase}_ms": round(by_phase.get(phase, 0.0), 3)
             for phase in PHASE_ORDER}
    cells["doctor_wall_ms"] = round(doc.wall_ms, 3)
    return cells


def e2e_job_rate(prefetch: int = 1, seed_batch: int = 1,
                 drain_batch: int = 1, workers: int = 4,
                 strips: int = 24, rounds: int = 1,
                 trace: bool = False, codec: str = "pickle",
                 analyze: bool = False) -> float:
    """Best-of-``rounds`` tasks/second for one full master–worker job.

    Raytrace-shaped (paper §5.1.2): a 600×600 image plane split into
    ``strips`` full-width scanline strips; each task carries its region's
    four coordinates and returns a synthetic per-row rendering.  Compute
    cost is modelled virtual time, so the wall clock measures exactly
    what the pipeline changes: round trips, messages, and handoffs.
    The timer brackets the *second* ``master.run()`` on a standing
    framework — seed through final aggregation, the paper's
    job-completion measure, with one-time costs (worker class loading,
    connection setup) amortized by the warm-up job — not runtime
    construction or thread teardown, which are identical in both
    configurations.  Poll budgets are generous because blocking takes
    wake on arrival in virtual time; short budgets would just add poll
    traffic both configurations share.
    """
    from repro.experiments.harness import run_simulation

    def body(runtime):
        cluster, framework = _strip_job_framework(
            runtime, workers=workers, strips=strips, prefetch=prefetch,
            seed_batch=seed_batch, drain_batch=drain_batch, trace=trace,
            codec=codec)
        framework.start()
        framework.start_all_workers()
        warmup = framework.master.run()
        if analyze:
            # The warm-up job's spans belong to the warm-up: drop them so
            # the timed window pays for analyzing exactly one job's spans
            # (the per-job cost the gate is about), not two jobs' worth.
            framework.tracer.spans.clear()
        t0 = time.perf_counter()
        report = framework.master.run()
        if analyze:
            # Time the doctor's critical-path sweep inside the measured
            # window: bench_trace_overhead gates analysis cost the same
            # way it gates span-recording cost.
            from repro.telemetry import analyze_job

            analyze_job(framework.tracer)
        elapsed = time.perf_counter() - t0
        framework.shutdown()
        assert warmup.complete and report.complete, \
            "benchmark job did not complete"
        return elapsed

    best = 0.0
    for _ in range(rounds):
        elapsed = run_simulation(body)
        if elapsed > 0:
            best = max(best, strips / elapsed)
    return best


def e2e_sharded_rate(shards: int, smoke: bool = False) -> float:
    """Virtual-time tasks/second of the egress-bound job at one shard count.

    Unlike the wall-clock e2e numbers, this one is measured on the
    simulation clock (the job is network-bound by construction, and the
    network is modelled), so it is deterministic for the fixed seed and
    the 16-shard/1-shard ratio is a stable, gateable scaling figure.
    """
    from repro.experiments.scalability import sharded_throughput_experiment

    if smoke:
        row = sharded_throughput_experiment(
            shards, workers=4, strips=32, result_kb=16, prefetch=4)
    else:
        row = sharded_throughput_experiment(shards)
    return row.tasks_per_s


def fairness_jain_index(tenants: int = 8, takes_per_tenant: int = 30) -> float:
    """Jain's fairness index of DRR take grants across equal tenants.

    ``tenants`` equally weighted tenants stay backlogged while
    ``tenants * takes_per_tenant`` wildcard takes drain the space;
    J = (Σx)² / (n·Σx²) over the per-tenant grant counts.  1.0 means
    the dispatcher split the takes perfectly evenly.
    """
    from repro.core.entries import TaskEntry as CoreTaskEntry

    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)
    names = [f"t{i:02d}" for i in range(tenants)]
    takes = tenants * takes_per_tenant

    def body():
        space.configure_fair_share({name: 1.0 for name in names})
        task_id = 0
        for name in names:
            for _ in range(2 * takes_per_tenant):  # never drains early
                space.write(CoreTaskEntry(app_id="bench", task_id=task_id,
                                          tenant=name, priority=0))
                task_id += 1
        for _ in range(takes):
            assert space.take(CoreTaskEntry(), timeout_ms=0.0) is not None

    proc = runtime.kernel.spawn(body, name="bench")
    runtime.kernel.run_until_idle()
    assert proc.finished and proc.error is None
    grants = [space.fair_stats.get(f"grants:{name}", 0) for name in names]
    runtime.shutdown()
    total = sum(grants)
    squares = sum(g * g for g in grants)
    return (total * total) / (len(grants) * squares) if squares else 0.0


def contention_overload(smoke: bool = False) -> dict[str, float]:
    """Victim-tenant service under an aggressor flooding 10x its quota.

    Runs the multi-tenant contention campaign (admission control +
    weighted fair share + preemption) and reports the victim's
    virtual-time throughput and its p99 completion-gap — the stall a
    victim task sees while the flood is being shed.  Both figures are
    deterministic (simulated clock), so the gates are noise-free.
    """
    from repro.experiments.chaos import contention_chaos_experiment

    result = contention_chaos_experiment(
        seed=42, tenants=4 if smoke else 8,
        victim_tasks=8 if smoke else 24,
    )
    assert result.correct and result.consistent, \
        "contention benchmark run failed its own acceptance checks"
    return {
        "contention_victim_tasks_per_s": result.victim_throughput_per_s,
        "contention_victim_p99_gap_ms": result.victim_p99_gap_ms,
    }


def durable_commit_rate(fsync_policy: str, n: int = 400,
                        group_size: int = 64,
                        codec: str = "pickle") -> int:
    """Commit records through a file-backed WAL under one fsync policy.

    ``always`` pays one fsync per commit; ``group`` amortizes one fsync
    over up to ``group_size`` buffered commits (the trailing partial
    group is flushed by the final durability barrier, so both policies
    end fully durable)."""
    from repro.tuplespace.wal import FileWalStore, WriteAheadLog, op_write

    with tempfile.TemporaryDirectory() as tmp:
        store = FileWalStore(os.path.join(tmp, "wal"),
                             fsync_policy=fsync_policy,
                             group_size=group_size,
                             codec=codec)
        wal = WriteAheadLog(store)
        payload = b"x" * 100
        for i in range(n):
            wal.append((op_write(i, payload, float("inf")),))
        wal.sync()
        store.close()
    return n


# -------------------------------------------------------------------- driver --

def run(rounds: int, smoke: bool) -> dict[str, float]:
    scale = 10 if smoke else 1
    results = {
        # Headline space/durable cells run the compact codec (the
        # configuration the perf work targets); the _pickle cells keep
        # the reference codec honest and measurable side by side.
        "space_write_take_ops_per_s": _time(
            lambda: space_write_take(2000 // scale, codec="compact"), rounds),
        "space_write_take_pickle_ops_per_s": _time(
            lambda: space_write_take(2000 // scale, codec="pickle"), rounds),
        "space_selectivity_ops_per_s": _time(
            lambda: space_selectivity(1000 // scale, 100 // scale), rounds),
        "kernel_events_per_s": _time(
            lambda: kernel_event_rate(20000 // scale), rounds),
        "process_handoffs_per_s": _time(
            lambda: process_handoff_rate(2000 // scale), rounds),
        "contention_write_take_ops_per_s": _time(
            lambda: contention_write_take(500 // scale), rounds),
        "contention_wakeups_per_write": contention_wakeups_per_write(
            200 // scale),
        "e2e_unpipelined_tasks_per_s": e2e_job_rate(
            prefetch=1, seed_batch=1, drain_batch=1,
            strips=24 if scale == 1 else 6, rounds=rounds),
        "e2e_pipelined_tasks_per_s": e2e_job_rate(
            prefetch=6, seed_batch=24, drain_batch=24,
            strips=24 if scale == 1 else 6, rounds=rounds),
        "durable_commits_always_per_s": _time(
            lambda: durable_commit_rate("always", 400 // scale), rounds),
        "durable_commits_group_per_s": _time(
            lambda: durable_commit_rate("group", 400 // scale,
                                        codec="compact"), rounds),
        "durable_commits_group_pickle_per_s": _time(
            lambda: durable_commit_rate("group", 400 // scale,
                                        codec="pickle"), rounds),
        # Deterministic virtual-time numbers: one run regardless of
        # --rounds (re-running replays the identical simulation).
        "e2e_sharded_1shard_tasks_per_s": e2e_sharded_rate(1, smoke),
        "e2e_sharded_tasks_per_s": e2e_sharded_rate(16, smoke),
        "contention_jain_index": fairness_jain_index(
            tenants=4 if smoke else 8),
    }
    results.update(contention_overload(smoke))
    if not smoke:
        results.update(e2e_job_wire_cost())
        results.update(doctor_phase_cells())
    return results


def check_against(committed: dict[str, Any],
                  current: dict[str, float],
                  baseline: Optional[dict[str, Any]] = None) -> list[str]:
    """CI floor: every committed throughput must stay >= CHECK_FLOOR×.

    A committed metric the current run did not produce is itself a
    failure — silently skipping it would let a renamed or dropped
    workload retire its own regression gate.

    Three independent floors per ``*_per_s`` cell: committed-relative
    (CHECK_FLOOR, catches a regression landing now), baseline-relative
    (BASELINE_FLOOR, catches a regression that already shipped its own
    lowered committed reference — the ratchet-down loophole), and the
    absolute ABS_FLOORS for the codec headline cells.  The deterministic
    wire-cost cells are gated by a *ceiling* (WIRE_CEIL): lower is
    better and the numbers are exact, so growth means a structural
    payload regression, never noise.
    """
    failures = []
    for key, reference in committed.items():
        if not key.endswith("_per_s") or not reference:
            continue
        measured = current.get(key)
        if measured is None:
            failures.append(
                f"{key}: committed metric missing from this run "
                f"(workload dropped or renamed?)")
            continue
        ratio = measured / reference
        if ratio < CHECK_FLOOR:
            failures.append(
                f"{key}: {measured:.1f} is {ratio:.2f}x of committed "
                f"{reference:.1f} (floor {CHECK_FLOOR}x)")
    for key, reference in (baseline or {}).items():
        if not key.endswith("_per_s") or not reference:
            continue
        measured = current.get(key)
        if measured is None:
            continue  # already reported against committed above
        floor = BASELINE_FLOOR_OVERRIDES.get(key, BASELINE_FLOOR)
        ratio = measured / reference
        if ratio < floor:
            failures.append(
                f"{key}: {measured:.1f} is {ratio:.2f}x of the recorded "
                f"baseline {reference:.1f} (floor {floor}x; "
                f"a committed regression cannot ratchet this one down)")
    for key, floor in ABS_FLOORS.items():
        measured = current.get(key)
        if measured is not None and measured < floor:
            failures.append(
                f"{key}: {measured:.1f} below the absolute floor "
                f"{floor:.0f} ops/s (compact-codec hot path)")
    for key in WIRE_CELLS:
        reference = committed.get(key)
        measured = current.get(key)
        if reference and measured is not None and \
                measured > reference * WIRE_CEIL:
            failures.append(
                f"{key}: {measured:.1f} is {measured / reference:.2f}x of "
                f"committed {reference:.1f} (ceiling {WIRE_CEIL}x; "
                f"deterministic wire cost — payload inflation, not noise)")
    base = current.get("e2e_sharded_1shard_tasks_per_s")
    many = current.get("e2e_sharded_tasks_per_s")
    if base and many and many / base < SHARD_SPEEDUP_FLOOR:
        failures.append(
            f"e2e_sharded_tasks_per_s: {many:.1f} is only "
            f"{many / base:.2f}x the 1-shard {base:.1f} "
            f"(floor {SHARD_SPEEDUP_FLOOR}x)")
    jain = current.get("contention_jain_index")
    if jain is not None and jain < JAIN_FAIRNESS_FLOOR:
        failures.append(
            f"contention_jain_index: {jain:.3f} below the absolute "
            f"fairness floor {JAIN_FAIRNESS_FLOOR}")
    p99_ref = committed.get("contention_victim_p99_gap_ms")
    p99 = current.get("contention_victim_p99_gap_ms")
    if p99_ref and p99 is not None and p99 > p99_ref * CONTENTION_P99_CEIL:
        failures.append(
            f"contention_victim_p99_gap_ms: {p99:.1f} is "
            f"{p99 / p99_ref:.2f}x of committed {p99_ref:.1f} "
            f"(ceiling {CONTENTION_P99_CEIL}x)")
    if any("e2e_" in line for line in failures):
        # An e2e gate tripped: append the doctor's phase-level diff of
        # the deterministic ``doctor_<phase>_ms`` cells so the failure
        # names the phase that grew, not just the headline number.
        from repro.telemetry.doctor import explain_phase_regression

        failures.extend(explain_phase_regression(committed, current))
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="take the best of N rounds per workload")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads; checks the harness, not perf")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one round, no write, implies --check")
    parser.add_argument("--check", action="store_true",
                        help="fail if any throughput drops below "
                             f"{CHECK_FLOOR}x of the committed current values")
    parser.add_argument("--rebaseline", action="store_true",
                        help="replace the stored baseline with this run")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    if args.rounds < 1:
        parser.error(f"--rounds must be >= 1 (got {args.rounds})")
    if args.quick:
        # Two rounds: one is too noisy for a 0.8x floor on a busy CI
        # box, three is the full default.
        args.check = True
        args.rounds = min(args.rounds, 2)

    current = run(args.rounds, args.smoke)

    doc: dict = {"schema": 1}
    if args.output.exists():
        try:
            doc = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            pass
    committed = dict(doc.get("current") or {})
    baseline = doc.get("baseline")
    if baseline is None or args.rebaseline:
        baseline = dict(current)
    else:
        # Workloads added after the baseline was recorded seed their own.
        for key, value in current.items():
            baseline.setdefault(key, value)

    speedup = {
        k: round(current[k] / baseline[k], 3)
        for k in current
        if k in baseline and baseline[k] and k.endswith("_per_s")
    }
    doc.update({"schema": 1, "baseline": baseline, "current": current,
                "speedup": speedup})
    if not (args.smoke or args.quick):
        args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    for key in sorted(current):
        extra = f"  ({speedup[key]}x vs baseline)" if key in speedup else ""
        print(f"{key:>36}: {current[key]:>14.1f}{extra}")
    if args.smoke:
        print("smoke run: harness OK, BENCH_micro.json left untouched")
    elif args.quick:
        print("quick run: BENCH_micro.json left untouched")
    else:
        print(f"wrote {args.output}")

    if args.check:
        failures = check_against(committed, current, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION {line}", file=sys.stderr)
            raise SystemExit(1)
        checked = sum(1 for k in committed
                      if k.endswith("_per_s") and k in current)
        print(f"check OK: {checked} throughput metrics >= "
              f"{CHECK_FLOOR}x committed")


if __name__ == "__main__":
    main()
