"""Ablation — master uplink bandwidth vs task distribution.

The paper's framework favours tasks with "small input/output sizes"; the
pre-fetching app ships ~84 KB matrix strips per task, all through the
master's uplink (workers fetch tasks from the space hosted there).  With
the egress-contention model enabled, a slower master link serializes the
strip downloads and stretches the whole run — quantifying the paper's
small-payload design guidance.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.apps.prefetch import PrefetchApplication
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.net.latency import LatencyModel
from repro.node.cluster import Cluster
from repro.node.machine import FAST_PC
from repro.sim.rng import RandomStreams

#: KB/ms: None = uncontended (calibration default); 10 ≈ 80 Mb/s;
#: 0.25 ≈ 2 Mb/s (a saturated late-90s shared segment).
LINKS = [None, 10.0, 0.25]


def run_with_link(egress_kb_per_ms):
    def body(runtime):
        cluster = Cluster(
            runtime,
            latency=LatencyModel(base_ms=0.3, jitter_ms=0.0, per_kb_ms=0.0,
                                 egress_kb_per_ms=egress_kb_per_ms),
            streams=RandomStreams(0),
        )
        cluster.add_workers(5, FAST_PC)
        framework = AdaptiveClusterFramework(
            runtime, cluster, PrefetchApplication(),
            FrameworkConfig(compute_real=False),
        )
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report.parallel_ms

    return run_simulation(body)


def test_ablation_master_uplink_bandwidth(benchmark):
    times = run_once(benchmark, lambda: [run_with_link(link) for link in LINKS])
    print()
    print(f"{'uplink (KB/ms)':>15} {'parallel (ms)':>14}")
    for link, parallel in zip(LINKS, times):
        label = "∞ (off)" if link is None else f"{link:g}"
        print(f"{label:>15} {parallel:>14.0f}")

    unconstrained, fast_link, slow_link = times
    # A fast LAN link barely matters; a saturated one visibly stretches
    # the run (strip downloads serialize on the master's uplink).
    assert fast_link < unconstrained * 1.05
    assert slow_link > unconstrained * 1.3
