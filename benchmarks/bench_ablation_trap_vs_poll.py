"""Ablation — trap-driven vs poll-driven monitoring (extension).

The paper's monitoring agent polls each worker over SNMP.  The extension
lets agents *push* a trap on load-band transitions instead.  This bench
runs the same transient-load scenario under both modes and compares
reaction latency and network traffic.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.node.loadgen import LoadSimulator2
from repro.sim.rng import RandomStreams
from tests.core.toyapp import SumOfSquares

LOAD_ON_MS = 4_000.0
LOAD_OFF_MS = 8_000.0


def run_mode(mode: str):
    def body(runtime):
        cluster = testbed_small(runtime, workers=3, streams=RandomStreams(0))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=60, task_cost=300.0),
            FrameworkConfig(monitoring_mode=mode, poll_interval_ms=1000.0),
        )
        hog = LoadSimulator2(runtime, cluster.workers[0])

        def loader():
            runtime.sleep(LOAD_ON_MS)
            hog.start()
            runtime.sleep(LOAD_OFF_MS - LOAD_ON_MS)
            hog.stop()

        framework.start()
        runtime.spawn(loader, name="loader")
        report = framework.run()

        stop_events = [
            t for t, payload in framework.metrics.events_named("signal-sent")
            if payload["signal"] == "stop" and payload["worker"] == "worker1"
        ]
        stop_delay = (stop_events[0] - LOAD_ON_MS) if stop_events else float("nan")
        datagrams = cluster.network.stats["datagrams"]
        polls = framework.netmgmt.stats["polls"]
        traps = framework.netmgmt.stats["traps_received"]
        framework.shutdown()
        return {
            "parallel_ms": report.parallel_ms,
            "stop_delay_ms": stop_delay,
            "datagrams": datagrams,
            "polls": polls,
            "traps": traps,
            "solution": report.solution,
        }

    return run_simulation(body)


def test_ablation_trap_vs_poll(benchmark):
    poll, trap = run_once(benchmark, lambda: (run_mode("poll"), run_mode("trap")))
    print()
    print(f"{'mode':>6} {'stop delay (ms)':>16} {'SNMP datagrams':>15} "
          f"{'polls':>6} {'traps':>6} {'parallel (ms)':>14}")
    print(f"{'poll':>6} {poll['stop_delay_ms']:>16.0f} {poll['datagrams']:>15} "
          f"{poll['polls']:>6} {poll['traps']:>6} {poll['parallel_ms']:>14.0f}")
    print(f"{'trap':>6} {trap['stop_delay_ms']:>16.0f} {trap['datagrams']:>15} "
          f"{trap['polls']:>6} {trap['traps']:>6} {trap['parallel_ms']:>14.0f}")

    # Both modes compute the same (correct) answer.
    expected = sum(i * i for i in range(60))
    assert poll["solution"] == trap["solution"] == expected
    # Trap mode reacts within the local sampling window — faster than the
    # poll period — and needs far fewer SNMP datagrams.
    assert trap["stop_delay_ms"] < poll["stop_delay_ms"]
    assert trap["datagrams"] < poll["datagrams"] / 2
    assert trap["polls"] == 0
    assert trap["traps"] >= 3
