"""Microbenchmarks of the substrates (real wall-clock throughput).

Unlike the figure benches (which regenerate deterministic virtual-time
experiments), these measure the Python implementation itself: tuple-space
operation throughput, SNMP codec speed, ray-tracing pixel rate, and the
simulation kernel's event rate.  Useful for catching performance
regressions in the substrate code.
"""

from __future__ import annotations

import numpy as np

from repro.apps.raytrace import Camera, default_scene, render_rows
from repro.runtime import SimulatedRuntime
from repro.sim import SimKernel
from repro.snmp import GetResponse, Oid
from repro.snmp.pdu import decode_message, encode_message
from repro.tuplespace import JavaSpace
from tests.tuplespace.entries import TaskEntry


def test_micro_space_write_take_throughput(benchmark):
    """Write+take cycles through the space (in-process, no network)."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def cycle():
        def body():
            for i in range(200):
                space.write(TaskEntry("bench", i, i))
            for _ in range(200):
                space.take(TaskEntry(), timeout_ms=0.0)

        proc = runtime.kernel.spawn(body, name="bench")
        runtime.kernel.run_until_idle()
        assert proc.finished

    benchmark.pedantic(cycle, rounds=5, iterations=1)
    runtime.shutdown()


def test_micro_space_template_selectivity(benchmark):
    """Selective takes against a 1000-entry store."""
    runtime = SimulatedRuntime()
    space = JavaSpace(runtime)

    def setup_and_query():
        def body():
            for i in range(1000):
                space.write(TaskEntry(f"app{i % 10}", i, None))
            for i in range(100):
                assert space.take(TaskEntry(app="app7"), timeout_ms=0.0) is not None
            # Drain the rest so rounds are independent.
            while space.take_if_exists(TaskEntry()) is not None:
                pass

        proc = runtime.kernel.spawn(body, name="bench")
        runtime.kernel.run_until_idle()
        assert proc.finished

    benchmark.pedantic(setup_and_query, rounds=3, iterations=1)
    runtime.shutdown()


def test_micro_snmp_codec(benchmark):
    pdu = GetResponse(
        request_id=42,
        varbinds=[(Oid(f"1.3.6.1.2.1.25.3.3.1.2.{i}"), i * 7) for i in range(10)],
        community="cluster",
    )

    def round_trips():
        for _ in range(500):
            decode_message(encode_message(pdu))

    benchmark.pedantic(round_trips, rounds=5, iterations=1)


def test_micro_raytracer_pixel_rate(benchmark):
    scene, camera = default_scene(), Camera()

    def strip():
        image = render_rows(scene, camera, 0, 25, 600, 600)
        assert image.shape == (25, 600, 3)

    benchmark.pedantic(strip, rounds=5, iterations=1)


def test_micro_kernel_event_rate(benchmark):
    """Pure event-loop throughput (no process handoffs)."""

    def burst():
        kernel = SimKernel()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1

        for i in range(5_000):
            kernel.call_later(float(i % 97), tick)
        kernel.run()
        assert counter["n"] == 5_000
        kernel.shutdown()

    benchmark.pedantic(burst, rounds=3, iterations=1)


def test_micro_contention_write_take(benchmark):
    """One writer feeding 16 takers parked on distinct templates.

    The interesting metric (asserted, not just timed): targeted wait
    queues wake only the taker whose template matches, so wakeups stay
    O(writes) instead of O(writes * takers) as under a global notify_all.
    """
    n_takers = 16
    writes_per_taker = 20

    def contended_round():
        runtime = SimulatedRuntime()
        space = JavaSpace(runtime)
        taken = []

        def taker(t):
            template = TaskEntry(app=f"app{t}")
            for _ in range(writes_per_taker):
                got = space.take(template, timeout_ms=100_000.0)
                assert got is not None
                taken.append(got.task_id)

        def writer():
            runtime.sleep(10.0)  # all takers parked
            for i in range(writes_per_taker):
                for t in range(n_takers):
                    space.write(TaskEntry(f"app{t}", i, None))

        def root():
            for t in range(n_takers):
                runtime.spawn(lambda t=t: taker(t), name=f"taker{t}")
            runtime.spawn(writer, name="writer")

        runtime.kernel.spawn(root, name="root")
        runtime.kernel.run_until_idle()
        assert len(taken) == n_takers * writes_per_taker
        # Each write wakes exactly the one matching waiter.
        wakeups_per_write = space.stats["wakeups"] / (n_takers * writes_per_taker)
        assert wakeups_per_write <= 1.0 + 1e-9
        runtime.shutdown()

    benchmark.pedantic(contended_round, rounds=3, iterations=1)


def test_micro_process_handoff_rate(benchmark):
    """Thread-backed process context switches per second."""

    def ping_pong():
        kernel = SimKernel()

        def proc():
            for _ in range(500):
                kernel.sleep(1.0)

        kernel.spawn(proc, name="pinger")
        kernel.run()
        kernel.shutdown()

    benchmark.pedantic(ping_pong, rounds=3, iterations=1)
