"""Shared plumbing for the figure/table benchmarks.

Every bench regenerates one of the paper's tables or figures: the
benchmark fixture times the full regeneration, and the bench prints the
same rows/series the paper reports (run with ``-s`` to see them).
Absolute numbers differ from the 2001 testbed — EXPERIMENTS.md records
paper-vs-measured side by side — but each bench asserts the paper's
qualitative claims so a regression in *shape* fails loudly.
"""

from __future__ import annotations

from typing import Any, Callable


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Time one deterministic regeneration of a figure."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_curves(result, width: int = 48) -> None:
    """ASCII rendering of the four scalability curves (Figs 6–8 style)."""
    rows = result.rows
    peak = max(max(r.max_worker_ms, r.parallel_ms, r.planning_ms,
                   r.aggregation_ms) for r in rows)
    if peak <= 0:
        return
    print(f"curves (x = workers, bar ∝ ms, full bar = {peak:.0f} ms)")
    for label, get in (
        ("max worker", lambda r: r.max_worker_ms),
        ("parallel", lambda r: r.parallel_ms),
        ("planning", lambda r: r.planning_ms),
        ("aggregation", lambda r: r.aggregation_ms),
    ):
        print(f"  {label}:")
        for row in rows:
            bar = "#" * int(round(get(row) / peak * width))
            print(f"    {row.workers:>3} |{bar}")


def print_series(title: str, history: list[tuple[float, float, float]],
                 width: int = 60, t_max: float | None = None) -> None:
    """ASCII rendering of a CPU-usage history (the Figs 9–11(a) panels)."""
    if not history:
        return
    end = t_max if t_max is not None else history[-1][0]
    print(title)
    print(f"{'t (s)':>7} {'CPU %':>6}  0%{' ' * (width - 6)}100%")
    step = end / 40.0
    t = 0.0
    index = 0
    while t <= end:
        while index + 1 < len(history) and history[index + 1][0] <= t:
            index += 1
        level = history[index][1]
        bar = "#" * int(round(level / 100.0 * width))
        print(f"{t / 1000.0:>7.1f} {level:>6.0f}  |{bar}")
        t += step
