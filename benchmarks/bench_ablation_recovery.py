"""Ablation — two recovery mechanisms for lost tasks.

A worker crash strands its in-flight task.  Two cures, from two lineages:

* **transactional takes** (JavaSpaces, §3): the dropped connection aborts
  the transaction and the task entry reappears immediately;
* **eager scheduling** (Charlotte, Table 1): the master re-writes the
  task after a straggler timeout, racing a replica.

Same crash scenario, both mechanisms; transactions recover faster (no
timeout to wait out), eager scheduling needs no transaction machinery.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.sim.rng import RandomStreams
from tests.core.toyapp import SumOfSquares

STRAGGLER_TIMEOUT_MS = 3_000.0


def run_recovery(mechanism: str):
    def body(runtime):
        cluster = testbed_small(runtime, workers=3, streams=RandomStreams(0))
        config = FrameworkConfig(
            transactional_takes=(mechanism == "transactions"),
            eager_scheduling=(mechanism == "eager"),
            straggler_timeout_ms=STRAGGLER_TIMEOUT_MS,
        )
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=30, task_cost=400.0), config
        )

        def killer():
            runtime.sleep(1_200.0)
            framework.worker_hosts[0].crash()

        framework.start()
        runtime.spawn(killer, name="killer")
        report = framework.run()
        framework.shutdown()
        return report.parallel_ms, report.solution

    return run_simulation(body)


def test_ablation_recovery_mechanisms(benchmark):
    (txn_ms, txn_solution), (eager_ms, eager_solution) = run_once(
        benchmark, lambda: (run_recovery("transactions"), run_recovery("eager"))
    )
    print()
    print(f"transactional takes : {txn_ms:>8.0f} ms")
    print(f"eager scheduling    : {eager_ms:>8.0f} ms "
          f"(straggler timeout {STRAGGLER_TIMEOUT_MS:.0f} ms)")

    expected = sum(i * i for i in range(30))
    assert txn_solution == eager_solution == expected
    # Transactions recover the lost task immediately; eager scheduling
    # pays the straggler timeout before its replica even starts.
    assert txn_ms < eager_ms
