"""Head-to-head codec microbenchmark: compact frames vs pickle.

Measures encode and decode ops/second and bytes/entry for the entry
shapes the framework actually ships — a selective template, a seeded
task, and a payload-bearing result — under both codecs, plus the WAL
commit-record frame path (``record_frame``).  Wall-clock only; nothing
is written to BENCH_micro.json (run_micro carries the gated cells).

Usage::

    PYTHONPATH=src python benchmarks/bench_codec.py [--rounds N] [-n OPS]
"""

from __future__ import annotations

import argparse
import time

from repro.core.entries import ResultEntry, TaskEntry
from repro.tuplespace.wal import CommitRecord, op_write, record_frame
from repro.util.codec import decode_any, encode_entry
from repro.util.serialization import deserialize, serialize

SHAPES = {
    "template": TaskEntry(app_id="bench"),
    "task": TaskEntry(app_id="bench", task_id=7,
                      payload={"region": (0, 75, 600, 100)},
                      trace="bench/7", tenant="t00", priority=1),
    "result": ResultEntry(app_id="bench", task_id=7,
                          payload=[600 * y for y in range(25)],
                          worker="worker1", compute_ms=2500.0,
                          trace="bench/7", tenant="t00", priority=1),
}


def _best(fn, n: int, rounds: int) -> float:
    best = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, n / elapsed)
    return best


def run(n: int, rounds: int) -> None:
    header = (f"{'shape':>10} {'codec':>8} {'enc ops/s':>12} "
              f"{'dec ops/s':>12} {'bytes':>6}")
    print(header)
    print("-" * len(header))
    for name, entry in SHAPES.items():
        for codec, enc, dec in (
            ("compact", encode_entry, decode_any),
            ("pickle", serialize, deserialize),
        ):
            data = enc(entry)
            enc_rate = _best(lambda: enc(entry), n, rounds)
            dec_rate = _best(lambda: dec(data), n, rounds)
            print(f"{name:>10} {codec:>8} {enc_rate:>12.0f} "
                  f"{dec_rate:>12.0f} {len(data):>6}")

    # WAL frame path: one-write commit records, the group-commit shape.
    record = CommitRecord(
        lsn=1, epoch=3,
        ops=(op_write(7, encode_entry(SHAPES["task"]), float("inf")),))
    for codec in ("compact", "pickle"):
        def frame():
            # record_frame caches on the instance; strip the cache so the
            # benchmark measures encoding, not a dict lookup.
            record.__dict__.pop("_frame", None)
            return record_frame(record, codec)

        data = record_frame(record, codec)
        rate = _best(frame, n, rounds)
        print(f"{'wal-frame':>10} {codec:>8} {rate:>12.0f} {'-':>12} "
              f"{len(data):>6}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-n", type=int, default=20_000,
                        help="ops per timing round")
    parser.add_argument("--rounds", type=int, default=3,
                        help="take the best of N rounds")
    args = parser.parse_args()
    run(args.n, args.rounds)


if __name__ == "__main__":
    main()
