"""Figure 10 — adaptation protocol analysis, ray tracing application."""

from __future__ import annotations

import pytest

from benchmarks._shared import print_series, run_once
from repro.experiments import (
    adaptation_experiment,
    make_raytrace_app,
    raytrace_cluster,
)


def test_fig10_adaptation_raytrace(benchmark):
    result = run_once(
        benchmark,
        lambda: adaptation_experiment(make_raytrace_app, raytrace_cluster),
    )
    print()
    print_series("Fig 10(a) — worker CPU usage (ray tracing)", result.cpu_history,
                 t_max=44_000.0)
    print()
    print(result.format_table())

    assert result.signals_in_order == ["start", "stop", "start", "pause", "resume"]
    # "the first peak is at 42% CPU usage … due to the remote loading"
    start = result.reaction_for("start")
    spike = result.peak_cpu(start.at_ms, start.at_ms + start.worker_ms - 1.0)
    assert spike == pytest.approx(42.0, abs=3.0)
    # "The Ray Tracing application is resource intensive as illustrated by
    #  the various intermittent peaks at 78 to 100% CPU usage … when the
    #  task is being computed at the worker node."
    assert result.peak_cpu(start.at_ms + start.worker_ms, 7_900.0) >= 78.0
    assert result.class_loads == 2
    assert result.reaction_for("resume").worker_ms < 10.0
