"""Ablation — the cost of crash-safe (transactional) task takes.

Transactional takes buy fault tolerance (see the fault-injection tests)
at the price of extra space-server round trips per task (txn create +
commit).  This bench measures that overhead on a clean run and shows the
payoff under a worker crash.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.sim.rng import RandomStreams
from tests.core.toyapp import SumOfSquares


def run_clean(transactional: bool) -> float:
    def body(runtime):
        cluster = testbed_small(runtime, workers=3, streams=RandomStreams(0))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=30, task_cost=200.0),
            FrameworkConfig(transactional_takes=transactional),
        )
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report.parallel_ms

    return run_simulation(body)


def run_with_crash(transactional: bool):
    def body(runtime):
        cluster = testbed_small(runtime, workers=3, streams=RandomStreams(0))
        framework = AdaptiveClusterFramework(
            runtime, cluster, SumOfSquares(n=30, task_cost=200.0),
            FrameworkConfig(transactional_takes=transactional),
        )

        def killer():
            runtime.sleep(2_500.0)
            framework.worker_hosts[0].crash()

        framework.start()
        runtime.spawn(killer, name="killer")
        report = framework.run()
        framework.shutdown()
        return report.solution

    return run_simulation(body)


def test_ablation_transactional_takes(benchmark):
    plain_ms, txn_ms, crash_solution = run_once(
        benchmark,
        lambda: (run_clean(False), run_clean(True), run_with_crash(True)),
    )
    overhead = (txn_ms - plain_ms) / plain_ms
    print()
    print(f"plain takes         : {plain_ms:>8.0f} ms")
    print(f"transactional takes : {txn_ms:>8.0f} ms  (+{overhead:.1%})")
    print(f"crash run solution  : {crash_solution} (correct despite crash)")

    assert crash_solution == sum(i * i for i in range(30))
    # Overhead exists but stays modest for coarse-grained tasks.
    assert txn_ms >= plain_ms
    assert overhead < 0.30