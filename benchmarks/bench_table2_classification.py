"""Table 2 — classification of the evaluated applications (measured)."""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.experiments.classify import classify_applications, format_table


def test_table2_classification(benchmark):
    rows = run_once(benchmark, classify_applications)
    print()
    print(format_table(rows))

    by_app = {r.app_id: r for r in rows}
    # The paper's grades, reproduced from measurements:
    assert by_app["option-pricing"].scalability == "Medium"
    assert by_app["ray-tracing"].scalability == "High"
    assert by_app["web-prefetch"].scalability == "Low"
    assert by_app["option-pricing"].cpu == "Adaptable"
    assert by_app["ray-tracing"].cpu == "High"
    assert by_app["web-prefetch"].cpu == "Low"
    assert not by_app["option-pricing"].task_dependency
    assert not by_app["ray-tracing"].task_dependency
    assert by_app["web-prefetch"].task_dependency
