"""Ablation — adaptive parallelism vs job-level parallelism (Table 1).

The paper positions its adaptive (bag-of-tasks) approach against
Condor-style job-level parallelism.  This bench runs the same ray-tracing
workload under both schedulers on the same cluster, with one worker
taken over by an interactive user mid-run, and compares completion time,
migrations and lost work.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.apps.raytrace import RayTracingApplication
from repro.core.framework import AdaptiveClusterFramework, FrameworkConfig
from repro.core.joblevel import JobLevelConfig, JobLevelScheduler
from repro.experiments.harness import run_simulation
from repro.node.cluster import testbed_small
from repro.node.loadgen import LoadSimulator2
from repro.sim.rng import RandomStreams

WORKERS = 4
LOAD_ON_MS = 6_000.0
LOAD_OFF_MS = 16_000.0


def _with_load(runtime, cluster) -> None:
    hog = LoadSimulator2(runtime, cluster.workers[0])

    def loader():
        runtime.sleep(LOAD_ON_MS)
        hog.start()
        runtime.sleep(LOAD_OFF_MS - LOAD_ON_MS)
        hog.stop()

    runtime.spawn(loader, name="loader")


def run_adaptive():
    def body(runtime):
        cluster = testbed_small(runtime, workers=WORKERS,
                                streams=RandomStreams(0))
        _with_load(runtime, cluster)
        framework = AdaptiveClusterFramework(
            runtime, cluster, RayTracingApplication(),
            FrameworkConfig(poll_interval_ms=500.0, compute_real=False),
        )
        framework.start()
        report = framework.run()
        framework.shutdown()
        return report.parallel_ms

    return run_simulation(body)


def run_joblevel():
    def body(runtime):
        cluster = testbed_small(runtime, workers=WORKERS,
                                streams=RandomStreams(0))
        _with_load(runtime, cluster)
        scheduler = JobLevelScheduler(
            runtime, cluster, RayTracingApplication(),
            JobLevelConfig(poll_interval_ms=500.0), compute_real=False,
        )
        report = scheduler.run()
        return report.parallel_ms, report.migrations, scheduler.lost_work_ms

    return run_simulation(body)


def test_ablation_adaptive_vs_joblevel(benchmark):
    adaptive_ms, (joblevel_ms, migrations, lost_ms) = run_once(
        benchmark, lambda: (run_adaptive(), run_joblevel())
    )
    print()
    print(f"adaptive parallelism : {adaptive_ms:>9.0f} ms")
    print(f"job-level parallelism: {joblevel_ms:>9.0f} ms "
          f"({migrations} migrations, {lost_ms:.0f} ms work lost)")

    # The adaptive framework rebalances task-by-task; the static job
    # partition stalls behind the evicted node's share.
    assert adaptive_ms < joblevel_ms
    assert migrations >= 1
