"""Experiment 3 (§5.2.3) — dynamic worker behaviour under varying load.

Three runs per application: load simulator 2 on 0 %, 25 % and 50 % of the
workers; measures Max Worker Time, Max Master Overhead, Task Planning and
Aggregation Time, and Total Parallel Time.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import run_once
from repro.experiments import (
    dynamics_experiment,
    make_options_app,
    make_prefetch_app,
    make_raytrace_app,
    options_cluster,
    prefetch_cluster,
    raytrace_cluster,
)


def test_exp3_dynamics_raytrace(benchmark):
    result = run_once(
        benchmark,
        lambda: dynamics_experiment(make_raytrace_app, raytrace_cluster, workers=4),
    )
    print()
    print(result.format_table())
    times = [r.total_parallel_ms for r in result.rows]
    assert times[0] < times[1] < times[2]
    # Master overhead stays constant across load conditions.
    overheads = [r.max_master_overhead_ms for r in result.rows]
    assert max(overheads) == pytest.approx(min(overheads), rel=0.2)


def test_exp3_dynamics_options(benchmark):
    result = run_once(
        benchmark,
        lambda: dynamics_experiment(make_options_app, options_cluster, workers=8),
    )
    print()
    print(result.format_table())
    # Planning-bound app: losing workers barely moves total parallel time
    # (8 → 4 workers is still past the Fig. 6 knee).
    times = [r.total_parallel_ms for r in result.rows]
    assert times[2] < times[0] * 1.3


def test_exp3_dynamics_prefetch(benchmark):
    result = run_once(
        benchmark,
        lambda: dynamics_experiment(make_prefetch_app, prefetch_cluster, workers=4),
    )
    print()
    print(result.format_table())
    times = [r.total_parallel_ms for r in result.rows]
    assert times[0] <= times[1] <= times[2]
