"""Figure 8 — scalability analysis, web page pre-fetching application.

1–5 workers on the five-PC 800 MHz testbed.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import print_curves, run_once
from repro.experiments import (
    make_prefetch_app,
    prefetch_cluster,
    scalability_experiment,
)

WORKER_COUNTS = [1, 2, 3, 4, 5]


def test_fig8_scalability_prefetch(benchmark):
    result = run_once(
        benchmark,
        lambda: scalability_experiment(make_prefetch_app, prefetch_cluster,
                                       WORKER_COUNTS),
    )
    print()
    print(result.format_table())
    print_curves(result)
    print("speedups:", [(w, round(s, 2)) for w, s in result.speedups()])

    rows = {r.workers: r for r in result.rows}
    speedups = dict(result.speedups())

    # "the application scales up to 4 processors"
    assert speedups[4] > 2.5
    assert speedups[5] == pytest.approx(speedups[4], rel=0.10)
    # "This application has a low task planning overhead."
    for row in result.rows:
        assert row.planning_ms < 0.05 * row.parallel_ms
    # "Task Aggregation Time dominates the Parallel Time in this case."
    assert rows[5].aggregation_ms > 0.8 * rows[5].parallel_ms
