"""The paper's headline property, quantified: non-intrusive cycle stealing.

One worker computes ray-tracing tasks; the machine's owner is active
(load simulator 1, 30–50 %) for a 20 s window.  Metric: CPU the framework
consumed *during* the owner's window — with the network management module
monitoring (Pause on user activity) versus without (the worker ignores
the user and keeps stealing cycles).
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.experiments import make_raytrace_app, raytrace_cluster
from repro.experiments.intrusiveness import intrusiveness_experiment


def test_intrusiveness_monitoring_vs_not(benchmark):
    managed, unmanaged = run_once(
        benchmark,
        lambda: (
            intrusiveness_experiment(make_raytrace_app, raytrace_cluster,
                                     monitoring=True),
            intrusiveness_experiment(make_raytrace_app, raytrace_cluster,
                                     monitoring=False),
        ),
    )
    print()
    print(f"{'monitoring':>11} {'stolen CPU (ms)':>16} {'share of window':>16} "
          f"{'tasks done':>11}")
    print(f"{'on':>11} {managed.stolen_ms:>16.0f} "
          f"{managed.stolen_share:>15.1%} {managed.tasks_done:>11}")
    print(f"{'off':>11} {unmanaged.stolen_ms:>16.0f} "
          f"{unmanaged.stolen_share:>15.1%} {unmanaged.tasks_done:>11}")

    # "monitoring and reacting to the current system state minimizes the
    # intrusiveness of the framework" — quantified:
    assert managed.stolen_share < 0.25          # a task drain at most
    assert unmanaged.stolen_share > 0.40        # keeps grinding regardless
    assert managed.stolen_ms < unmanaged.stolen_ms / 2
    # The unmanaged worker does finish more tasks — intrusiveness is the
    # price of that throughput, which is exactly the paper's trade.
    assert unmanaged.tasks_done >= managed.tasks_done
