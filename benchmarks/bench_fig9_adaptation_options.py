"""Figure 9 — adaptation protocol analysis, option pricing application.

(a) worker CPU-usage history under the scripted load sequence;
(b) client/worker signal reaction times.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import print_series, run_once
from repro.experiments import adaptation_experiment, make_options_app, options_cluster


def test_fig9_adaptation_options(benchmark):
    result = run_once(
        benchmark,
        lambda: adaptation_experiment(make_options_app, options_cluster),
    )
    print()
    print_series("Fig 9(a) — worker CPU usage (option pricing)", result.cpu_history,
                 t_max=44_000.0)
    print()
    print(result.format_table())

    # The exact signal cycle of the figure.
    assert result.signals_in_order == ["start", "stop", "start", "pause", "resume"]
    # "The first peak is at 80% CPU usage and occurs when the worker is
    #  started … due to the remote loading of the worker implementation."
    start = result.reaction_for("start")
    spike = result.peak_cpu(start.at_ms, start.at_ms + start.worker_ms - 1.0)
    assert spike == pytest.approx(80.0, abs=3.0)
    # "The next peak at 100% CPU usage occurs when load simulator 2 is started"
    assert result.peak_cpu(9_000.0, 16_000.0) == 100.0
    # Stop → Start forces a class reload; Pause → Resume does not.
    assert result.class_loads == 2
    # "the worker reaction times to the signal received is minimal":
    # client delivery is network-scale, resume is immediate.
    for reaction in result.reactions:
        assert reaction.client_ms < 10.0
    assert result.reaction_for("resume").worker_ms < 10.0
