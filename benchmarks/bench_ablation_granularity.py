"""Ablation — task granularity for the pre-fetching application.

The paper: "The segment size of the strips, and hence the task size can
be further optimized to improve scalability."  This sweep varies the
strip size (4 → 100 rows) at the full 5-worker cluster and regenerates
the parallel-time curve, exposing the granularity sweet spot between
per-task overhead (fine strips) and load imbalance (coarse strips).
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.apps.prefetch import PrefetchApplication
from repro.experiments import prefetch_cluster, scalability_experiment

STRIP_SIZES = [4, 10, 20, 50, 100]


def sweep():
    rows = []
    for strip in STRIP_SIZES:
        result = scalability_experiment(
            lambda strip=strip: PrefetchApplication(strip_size=strip),
            prefetch_cluster,
            worker_counts=[5],
        )
        rows.append((strip, 500 // strip, result.rows[0].parallel_ms,
                     result.rows[0].aggregation_ms))
    return rows


def test_ablation_granularity(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(f"{'strip rows':>10} {'tasks':>6} {'parallel (ms)':>14} {'aggregation (ms)':>17}")
    for strip, tasks, parallel, aggregation in rows:
        print(f"{strip:>10} {tasks:>6} {parallel:>14.0f} {aggregation:>17.0f}")

    times = {strip: parallel for strip, _, parallel, _ in rows}
    best = min(times, key=times.get)
    # The sweet spot is interior: both extremes lose.
    assert best not in (STRIP_SIZES[0], STRIP_SIZES[-1])
    # Very fine strips pay per-task overhead (125 fixed aggregation hits).
    assert times[4] > times[best]
    # Very coarse strips (5 tasks on 5 workers) lose pipelining/balance.
    assert times[100] > times[best]
