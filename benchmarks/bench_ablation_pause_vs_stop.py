"""Ablation — the value of the Pause/Resume states.

The paper's design argument: transient load should Pause (classes stay in
memory) rather than Stop (classes dropped), "bypassing the overhead
associated with remote node configuration".  This ablation removes the
pause band (everything above the idle threshold Stops) and measures the
extra class reloads and the slower return to work.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.core.signals import ThresholdPolicy
from repro.experiments import (
    adaptation_experiment,
    make_raytrace_app,
    raytrace_cluster,
)

#: Degenerate policy: no pause band — 25 %+ load goes straight to Stop.
STOP_ONLY = ThresholdPolicy(idle_below=25.0, stop_above=25.0)


def run_both():
    with_pause = adaptation_experiment(make_raytrace_app, raytrace_cluster)
    stop_only = adaptation_experiment(
        make_raytrace_app, raytrace_cluster, policy=STOP_ONLY
    )
    return with_pause, stop_only


def test_ablation_pause_vs_stop(benchmark):
    with_pause, stop_only = run_once(benchmark, run_both)
    print()
    print("with pause band :", with_pause.signals_in_order,
          f"class loads = {with_pause.class_loads}")
    print("stop-only policy:", stop_only.signals_in_order,
          f"class loads = {stop_only.class_loads}")

    # Baseline: the transient (load sim 1) episode is absorbed by
    # Pause/Resume with no class reload.
    assert with_pause.class_loads == 2
    assert "pause" in with_pause.signals_in_order
    # Ablated: the same transient forces a Stop and a third class load.
    assert "pause" not in stop_only.signals_in_order
    assert stop_only.signals_in_order.count("stop") >= 2
    assert stop_only.class_loads >= 3

    # Returning to work after the transient costs a full class reload in
    # the ablated policy, versus a near-instant Resume.
    resume = with_pause.reaction_for("resume")
    restart = stop_only.reaction_for("start", occurrence=2)
    assert resume.worker_ms < 10.0
    assert restart.worker_ms > 500.0
