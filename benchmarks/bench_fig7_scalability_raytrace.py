"""Figure 7 — scalability analysis, parallel ray tracing application.

1–5 workers on the five-PC 800 MHz testbed.
"""

from __future__ import annotations

import pytest

from benchmarks._shared import print_curves, run_once
from repro.experiments import (
    make_raytrace_app,
    raytrace_cluster,
    scalability_experiment,
)

WORKER_COUNTS = [1, 2, 3, 4, 5]


def test_fig7_scalability_raytrace(benchmark):
    result = run_once(
        benchmark,
        lambda: scalability_experiment(make_raytrace_app, raytrace_cluster,
                                       WORKER_COUNTS),
    )
    print()
    print(result.format_table())
    print_curves(result)
    print("speedups:", [(w, round(s, 2)) for w, s in result.speedups()])

    rows = {r.workers: r for r in result.rows}

    # "Max Worker Time scales reasonably well for this application."
    for n in (2, 3, 4, 5):
        assert rows[n].max_worker_ms == pytest.approx(
            rows[1].max_worker_ms / n, rel=0.20
        )
    # "The Parallel Time is dominated by the maximum worker time"
    for row in result.rows:
        assert row.max_worker_ms > 0.75 * row.parallel_ms
    # "the Task Planning Time curve is constant at 500 ms"
    plannings = [r.planning_ms for r in result.rows]
    assert max(plannings) - min(plannings) < 50.0
    assert 300.0 < plannings[0] < 700.0
    # "The Task Aggregation Time curve follows the Max Worker Time curve"
    for row in result.rows:
        assert row.aggregation_ms == pytest.approx(row.max_worker_ms, rel=0.35)
