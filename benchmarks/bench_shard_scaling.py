"""Shard-count sweep — e2e throughput of the sharded tuple space.

The egress-bound strip job (fat results, tiny tasks) on 16 workers,
with the space partitioned over 1–16 dedicated server machines.  The
single space's host uplink bounds the job at 1 shard; consistent-hash
partitioning spreads the result entries — and so the drain traffic —
over N links.  All numbers are virtual-time (modelled network), so the
sweep is deterministic and the speedups are noise-free.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.experiments.scalability import (
    format_shard_table,
    shard_scaling_experiment,
)

SHARD_COUNTS = [1, 2, 4, 8, 16]

#: Minimum speedup over the 1-shard baseline per sweep point.  The gate
#: at 16 matches the BENCH_micro ``--check`` floor; the intermediate
#: points pin the *shape* (scaling must not plateau before 8 shards).
SPEEDUP_FLOORS = {2: 1.4, 4: 2.2, 8: 3.5, 16: 4.0}


def test_shard_scaling(benchmark):
    rows = run_once(benchmark, lambda: shard_scaling_experiment(SHARD_COUNTS))
    print()
    print(format_shard_table(rows))

    by_shards = {row.shards: row for row in rows}
    base = by_shards[1].tasks_per_s
    assert base > 0

    # Throughput must rise monotonically with the shard count.
    rates = [row.tasks_per_s for row in rows]
    assert rates == sorted(rates), f"non-monotonic scaling: {rates}"

    for shards, floor in SPEEDUP_FLOORS.items():
        speedup = by_shards[shards].tasks_per_s / base
        assert speedup >= floor, (
            f"{shards} shards: {speedup:.2f}x below the {floor}x floor")
