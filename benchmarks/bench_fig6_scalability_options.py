"""Figure 6 — scalability analysis, option pricing application.

Regenerates the four curves (Max Worker Time, Parallel Time, Task
Planning, Task Aggregation) for 1–13 workers on the paper's thirteen-PC
300 MHz testbed and asserts the figure's qualitative claims.
"""

from __future__ import annotations

from benchmarks._shared import print_curves, run_once
from repro.experiments import (
    make_options_app,
    options_cluster,
    scalability_experiment,
)

WORKER_COUNTS = list(range(1, 14))


def test_fig6_scalability_options(benchmark):
    result = run_once(
        benchmark,
        lambda: scalability_experiment(make_options_app, options_cluster,
                                       WORKER_COUNTS),
    )
    print()
    print(result.format_table())
    print_curves(result)
    print("speedups:", [(w, round(s, 2)) for w, s in result.speedups()])

    rows = {r.workers: r for r in result.rows}
    speedups = dict(result.speedups())

    # "there is an initial speedup as the number of workers is increased to 4"
    assert speedups[4] > 3.0
    # "The speedup deteriorates after that" — no meaningful gain 4 → 13.
    assert speedups[13] < speedups[4] * 1.15
    # "the Task Planning Time now dominates Parallel Time"
    assert rows[13].planning_ms > 0.8 * rows[13].parallel_ms
    # "the initial part of the Parallel Time curve (up to 4 processors)
    #  closely follows the Maximum Worker Time curve"
    for n in (1, 2, 4):
        assert abs(rows[n].parallel_ms - rows[n].max_worker_ms) < 0.25 * rows[n].parallel_ms
