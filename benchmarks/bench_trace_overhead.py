"""Tracing-overhead gate: traced throughput must stay >= FLOOR of untraced.

Runs the raytrace-shaped end-to-end job from ``run_micro.py`` with
tracing off and on in interleaved rounds and compares the *median*
wall-clock tasks/second.  Span recording sits on the data path (every
RPC, compute, and aggregate opens a span), so this is the honest worst
case for observability cost; the CI telemetry job fails the build when
the traced median drops below ``FLOOR`` (0.9×) of the untraced one.

A third cell times the traced run *plus* the doctor's critical-path
sweep (:func:`repro.telemetry.doctor.analyze_job`) over the recorded
spans, gated by the same floor against the plain traced run — the
attribution report must stay cheap enough to run on every ``--check``
failure.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_trace_overhead.py [--rounds N]
        [--strips N] [--floor X]

Exit status 1 on a floor violation.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.run_micro import e2e_job_rate  # noqa: E402

FLOOR = 0.9


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="best-of-N per configuration")
    parser.add_argument("--strips", type=int, default=24)
    parser.add_argument("--floor", type=float, default=FLOOR,
                        help="minimum traced/untraced throughput ratio")
    args = parser.parse_args()

    # Interleave the rounds so machine-speed phases (noisy CI boxes) land
    # on both configurations, and compare *medians* — a single lucky
    # sample must not decide a ratio gate.
    kwargs = dict(prefetch=6, seed_batch=24, drain_batch=24,
                  strips=args.strips, rounds=1)
    untraced_runs, traced_runs, doctored_runs = [], [], []
    for _ in range(args.rounds):
        untraced_runs.append(e2e_job_rate(trace=False, **kwargs))
        traced_runs.append(e2e_job_rate(trace=True, **kwargs))
        doctored_runs.append(e2e_job_rate(trace=True, analyze=True, **kwargs))
    untraced = statistics.median(untraced_runs)
    traced = statistics.median(traced_runs)
    doctored = statistics.median(doctored_runs)
    ratio = traced / untraced if untraced else 0.0
    doctor_ratio = doctored / traced if traced else 0.0
    print(f"untraced: {untraced:>10.1f} tasks/s")
    print(f"traced  : {traced:>10.1f} tasks/s")
    print(f"doctored: {doctored:>10.1f} tasks/s (traced + analyze_job)")
    print(f"ratio   : {ratio:.3f}x (floor {args.floor}x)")
    print(f"doctor  : {doctor_ratio:.3f}x of traced (floor {args.floor}x)")
    failed = False
    if ratio < args.floor:
        print(f"OVERHEAD: tracing costs {(1 - ratio):.1%} "
              f"(> {(1 - args.floor):.0%} budget)", file=sys.stderr)
        failed = True
    if doctor_ratio < args.floor:
        print(f"OVERHEAD: doctor analysis costs {(1 - doctor_ratio):.1%} "
              f"on top of tracing (> {(1 - args.floor):.0%} budget)",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
