"""Figure 11 — adaptation protocol analysis, web page pre-fetching."""

from __future__ import annotations

import pytest

from benchmarks._shared import print_series, run_once
from repro.experiments import (
    adaptation_experiment,
    make_prefetch_app,
    prefetch_cluster,
)


def test_fig11_adaptation_prefetch(benchmark):
    result = run_once(
        benchmark,
        lambda: adaptation_experiment(make_prefetch_app, prefetch_cluster),
    )
    print()
    print_series("Fig 11(a) — worker CPU usage (web pre-fetching)",
                 result.cpu_history, t_max=44_000.0)
    print()
    print(result.format_table())

    assert result.signals_in_order == ["start", "stop", "start", "pause", "resume"]
    # "the first peak is at 75% CPU usage … due to the remote loading"
    start = result.reaction_for("start")
    spike = result.peak_cpu(start.at_ms, start.at_ms + start.worker_ms - 1.0)
    assert spike == pytest.approx(75.0, abs=3.0)
    assert result.peak_cpu(9_000.0, 16_000.0) == 100.0
    assert result.class_loads == 2
    assert result.reaction_for("resume").worker_ms < 10.0
