"""Ablation — SNMP monitoring interval: responsiveness vs overhead.

The network management module polls each worker every ``poll_interval``.
Short intervals react faster to load (less intrusion on the node's owner)
but cost more SNMP traffic.  This sweep quantifies both sides.
"""

from __future__ import annotations

from benchmarks._shared import run_once
from repro.experiments import (
    adaptation_experiment,
    make_raytrace_app,
    raytrace_cluster,
)

INTERVALS_MS = [250.0, 1000.0, 4000.0]
LOADSIM2_ONSET_MS = 8_000.0


def sweep():
    rows = []
    for interval in INTERVALS_MS:
        result = adaptation_experiment(
            make_raytrace_app, raytrace_cluster, poll_interval_ms=interval
        )
        stop = result.reaction_for("stop")
        rows.append(
            (interval, stop.at_ms - LOADSIM2_ONSET_MS, result.snmp_polls,
             result.snmp_datagrams)
        )
    return rows


def test_ablation_monitor_interval(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(f"{'interval (ms)':>14} {'stop delay (ms)':>16} {'polls':>6} {'datagrams':>10}")
    for interval, delay, polls, datagrams in rows:
        print(f"{interval:>14.0f} {delay:>16.0f} {polls:>6} {datagrams:>10}")

    delays = {interval: delay for interval, delay, _, _ in rows}
    polls = {interval: p for interval, _, p, _ in rows}
    # Faster polling detects the load sooner…
    assert delays[250.0] < delays[1000.0] <= delays[4000.0] + 1e-9
    # …at proportionally higher monitoring traffic.
    assert polls[250.0] > 2.5 * polls[1000.0]
    assert polls[1000.0] > 2.5 * polls[4000.0]
    # Detection latency is bounded by one poll period (+ sampling window).
    for interval, delay, _, _ in rows:
        assert delay <= interval + 1500.0
